(* The irreg benchmark (irregular CFD-style edge/node kernel from the
   Han-Tseng suite): only 2 node arrays (16 bytes per node) and a
   per-edge weight array, so spatial reordering has the most room to
   help (many nodes per cache line).

   Loop chain per time step:
     loop 0 (j): edge flux    y[l] += w*(x[l]-x[r]); y[r] += w*(x[r]-x[l])
     loop 1 (k): node update  x[k] += c * y[k] *)

type state = {
  n : int;
  m : int;
  left : int array;
  right : int array;
  w : float array; (* per-edge weights: follow iteration reorderings *)
  x : float array;
  y : float array;
}

let relax = 0.001

let node_array_names = [ "x"; "y" ]
let inter_array_names = [ "left"; "right"; "w" ]

let flux_j st j =
  let l = st.left.(j) and r = st.right.(j) in
  let d = st.w.(j) *. (st.x.(l) -. st.x.(r)) in
  st.y.(l) <- st.y.(l) +. d;
  st.y.(r) <- st.y.(r) -. d

let update_k st k =
  st.x.(k) <- st.x.(k) +. (relax *. st.y.(k))

let run_plain st ~steps =
  for _s = 1 to steps do
    for j = 0 to st.m - 1 do
      flux_j st j
    done;
    for k = 0 to st.n - 1 do
      update_k st k
    done
  done

(* Chain position c executes loop (c mod 2): a 2-loop schedule is one
   time step, a 2S-loop schedule is S time steps (time-step tiling). *)
let run_tiled_st st (sched : Reorder.Schedule.t) ~steps =
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let iters = Reorder.Schedule.items sched ~tile:t ~loop:c in
        if c mod 2 = 0 then Array.iter (flux_j st) iters
        else Array.iter (update_k st) iters
      done
    done
  done

(* Parallel tiled executor: the flux positions (c mod 2 = 0) are
   reductions over y. The stashed flux w*(x[l]-x[r]) is a pure
   function of w and x, read-only during the position, so the ordered
   apply reproduces the serial float operations bit for bit. *)
let plan_par_st st ~pool sched ~level_of =
  let dj = Array.make st.m 0.0 in
  let exec =
    Rtrt_par.Exec.make ~pool ~sched ~level_of
      ~is_reduction:(fun c -> c mod 2 = 0)
      ~left:st.left ~right:st.right ~n_data:st.n
  in
  let body ~pos iters =
    if pos mod 2 = 0 then Array.iter (flux_j st) iters
    else Array.iter (update_k st) iters
  in
  let stash ~pos:_ iters =
    for idx = 0 to Array.length iters - 1 do
      let j = iters.(idx) in
      let l = st.left.(j) and r = st.right.(j) in
      dj.(j) <- st.w.(j) *. (st.x.(l) -. st.x.(r))
    done
  in
  let apply ~pos:_ ~datum refs lo hi =
    let y = st.y in
    for k = lo to hi - 1 do
      let rv = refs.(k) in
      let j = rv lsr 1 in
      if rv land 1 = 0 then y.(datum) <- y.(datum) +. dj.(j)
      else y.(datum) <- y.(datum) -. dj.(j)
    done
  in
  {
    Kernel.par_sched = Rtrt_par.Exec.schedule exec;
    par_run =
      (fun ~steps -> Rtrt_par.Exec.run exec ~steps ~body ~stash ~apply);
  }

let trace_j ~touch ~touch_inter left right j =
  touch_inter 0 j;
  touch_inter 1 j;
  touch_inter 2 j;
  let l = left.(j) and r = right.(j) in
  touch 0 l; touch 0 r;
  touch 1 l; touch 1 r

let trace_k ~touch k =
  touch 0 k;
  touch 1 k

let make_touch ~layout ~access names =
  let addr = Array.of_list (List.map (Cachesim.Layout.addresser layout) names) in
  fun a i -> access (addr.(a) i)

let run_traced_st st ~steps ~layout ~access =
  let touch = make_touch ~layout ~access node_array_names in
  let touch_inter = make_touch ~layout ~access inter_array_names in
  for _s = 1 to steps do
    for j = 0 to st.m - 1 do
      trace_j ~touch ~touch_inter st.left st.right j
    done;
    for k = 0 to st.n - 1 do
      trace_k ~touch k
    done
  done

let run_tiled_traced_st st sched ~steps ~layout ~access =
  let touch = make_touch ~layout ~access node_array_names in
  let touch_inter = make_touch ~layout ~access inter_array_names in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let iters = Reorder.Schedule.items sched ~tile:t ~loop:c in
        if c mod 2 = 0 then
          Array.iter (trace_j ~touch ~touch_inter st.left st.right) iters
        else Array.iter (trace_k ~touch) iters
      done
    done
  done

let rec make st =
  let access = Reorder.Access.of_pairs ~n_data:st.n st.left st.right in
  (* Chain [j; k]: k-iterations depend on the j-iterations touching
     their node, i.e. the transpose of the j access. *)
  let chain_of_access acc =
    Reorder.Sparse_tile.make_chain
      ~loop_sizes:[| st.m; st.n |]
      ~conn:[| Reorder.Access.transpose acc |]
  in
  let apply_data_perm sigma =
    make
      {
        st with
        left = Reorder.Perm.remap_values sigma st.left;
        right = Reorder.Perm.remap_values sigma st.right;
        x = Reorder.Perm.apply_to_float_array sigma st.x;
        y = Reorder.Perm.apply_to_float_array sigma st.y;
      }
  in
  let apply_iter_perm delta =
    make
      {
        st with
        left = Reorder.Perm.apply_to_array delta st.left;
        right = Reorder.Perm.apply_to_array delta st.right;
        w = Reorder.Perm.apply_to_float_array delta st.w;
      }
  in
  {
    Kernel.name = "irreg";
    n_nodes = st.n;
    n_inter = st.m;
    node_array_names;
    inter_array_names;
    access;
    loop_sizes = [| st.m; st.n |];
    seed_loop = 0;
    chain_of_access;
    wrap_conn_of_access = (fun acc -> acc);
    symmetric_backward = [];
    apply_data_perm;
    apply_iter_perm;
    run = (fun ~steps -> run_plain st ~steps);
    run_tiled = (fun sched ~steps -> run_tiled_st st sched ~steps);
    run_traced =
      (fun ~steps ~layout ~access -> run_traced_st st ~steps ~layout ~access);
    run_tiled_traced =
      (fun sched ~steps ~layout ~access ->
        run_tiled_traced_st st sched ~steps ~layout ~access);
    plan_par =
      (fun ~pool sched ~level_of -> plan_par_st st ~pool sched ~level_of);
    snapshot =
      (fun () -> [ ("x", Array.copy st.x); ("y", Array.copy st.y) ]);
    copy =
      (fun () ->
        make
          {
            st with
            left = Array.copy st.left;
            right = Array.copy st.right;
            w = Array.copy st.w;
            x = Array.copy st.x;
            y = Array.copy st.y;
          });
  }

let init_value ~salt i =
  let h = ((i + 1) * 2654435761) land 0xFFFFFF in
  float_of_int ((h lxor salt) land 0xFFFF) /. 65536.0

let of_dataset (d : Datagen.Dataset.t) =
  let n = d.Datagen.Dataset.n_nodes in
  let m = Datagen.Dataset.n_interactions d in
  make
    {
      n;
      m;
      left = Array.copy d.Datagen.Dataset.left;
      right = Array.copy d.Datagen.Dataset.right;
      w = Array.init m (init_value ~salt:21);
      x = Array.init n (init_value ~salt:22);
      y = Array.make n 0.0;
    }
