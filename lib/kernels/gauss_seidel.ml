(* Gauss-Seidel smoothing over an irregular mesh — the computation
   sparse tiling was originally developed for (Section 2.3: "until
   now, it has only been applied to Gauss-Seidel"). Including it here
   exercises full sparse tiling across iterations of an *outer* loop
   (the convergence loop), the second pattern the paper describes.

   The smoother solves A u = f for the graph Laplacian-like operator

     u(v) <- ( f(v) + sum_{w in adj(v)} u(w) ) / (deg(v) + c)

   updated in place, nodes in numbering order, for [sweeps] sweeps.

   Sparse-tiled execution runs tiles atomically: within a tile, sweeps
   in order; within a sweep, member nodes in numbering order. The tile
   function theta(v, s) must respect every Gauss-Seidel dependence:

     C1 (within sweep) : adjacent v < w        => theta(v,s) <= theta(w,s)
     C2 (cross sweep)  : adjacent v, w, any id => theta(w,s) <= theta(v,s+1)
     C3 (self)         :                          theta(v,s) <= theta(v,s+1)

   Growth starts from a seed partitioning (nodes renumbered so the
   seed is monotone), proceeds min-backward / max-forward as in
   Section 2.3, then repairs within-sweep violations to a fixpoint.
   [check_constraints] verifies all three constraint families, and the
   tiled executor is bitwise-equal to the plain one because every
   value version matches. *)

type t = {
  graph : Irgraph.Csr.t;
  u : float array;
  f : float array;
}

let damping = 1.0

let create ~graph ~f =
  let n = Irgraph.Csr.num_nodes graph in
  { graph; u = Array.make n 0.0; f = Array.copy f }

let copy t = { t with u = Array.copy t.u; f = Array.copy t.f }

let update t v =
  let acc = ref t.f.(v) in
  Irgraph.Csr.iter_neighbors t.graph v (fun w -> acc := !acc +. t.u.(w));
  t.u.(v) <- !acc /. (float_of_int (Irgraph.Csr.degree t.graph v) +. damping)

let run_plain t ~sweeps =
  let n = Irgraph.Csr.num_nodes t.graph in
  for _s = 1 to sweeps do
    for v = 0 to n - 1 do
      update t v
    done
  done

(* ------------------------------------------------------------------ *)
(* Tile functions across sweeps                                        *)

type tiling = {
  n_tiles : int;
  sweeps : int;
  theta : int array array; (* theta.(s).(v) = tile of node v at sweep s *)
}

(* Enforce C1 within one sweep by raising tiles: a node may not be
   tiled earlier than any lower-numbered neighbor. One ascending pass
   reaches the fixpoint because each node only looks at lower ids. *)
let repair_raise graph theta_s =
  let n = Irgraph.Csr.num_nodes graph in
  for v = 0 to n - 1 do
    Irgraph.Csr.iter_neighbors graph v (fun w ->
        if w < v && theta_s.(w) > theta_s.(v) then theta_s.(v) <- theta_s.(w))
  done

(* Enforce C1 by lowering: a node may not be tiled later than any
   higher-numbered neighbor. One descending pass reaches the fixpoint. *)
let repair_lower graph theta_s =
  let n = Irgraph.Csr.num_nodes graph in
  for v = n - 1 downto 0 do
    Irgraph.Csr.iter_neighbors graph v (fun w ->
        if w > v && theta_s.(w) < theta_s.(v) then theta_s.(v) <- theta_s.(w))
  done

(* Grow a tiling from a seed partitioning of the nodes at sweep
   [seed_sweep]. The seed must already satisfy C1 (monotone among
   adjacent nodes) — renumber the nodes by the partition first. *)
let grow graph ~seed ~seed_sweep ~sweeps =
  let n = Irgraph.Csr.num_nodes graph in
  if Array.length seed.Reorder.Sparse_tile.tile_of <> n then
    invalid_arg "Gauss_seidel.grow: seed size";
  let n_tiles = seed.Reorder.Sparse_tile.n_tiles in
  let theta = Array.init sweeps (fun _ -> Array.make n 0) in
  Array.blit seed.Reorder.Sparse_tile.tile_of 0 theta.(seed_sweep) 0 n;
  repair_raise graph theta.(seed_sweep);
  (* Backward: min over closed neighborhood, then lower-repair C1. *)
  for s = seed_sweep - 1 downto 0 do
    for v = 0 to n - 1 do
      let m = ref theta.(s + 1).(v) in
      Irgraph.Csr.iter_neighbors graph v (fun w ->
          if theta.(s + 1).(w) < !m then m := theta.(s + 1).(w));
      theta.(s).(v) <- !m
    done;
    repair_lower graph theta.(s)
  done;
  (* Forward: max over closed neighborhood, then raise-repair C1. *)
  for s = seed_sweep + 1 to sweeps - 1 do
    for v = 0 to n - 1 do
      let m = ref theta.(s - 1).(v) in
      Irgraph.Csr.iter_neighbors graph v (fun w ->
          if theta.(s - 1).(w) > !m then m := theta.(s - 1).(w));
      theta.(s).(v) <- !m
    done;
    repair_raise graph theta.(s)
  done;
  { n_tiles; sweeps; theta }

(* All C1/C2/C3 violations; empty = the tiled execution is exactly
   plain Gauss-Seidel. *)
let check_constraints graph tiling =
  let n = Irgraph.Csr.num_nodes graph in
  let violations = ref [] in
  for s = 0 to tiling.sweeps - 1 do
    let th = tiling.theta.(s) in
    for v = 0 to n - 1 do
      Irgraph.Csr.iter_neighbors graph v (fun w ->
          if v < w && th.(v) > th.(w) then violations := (`C1, s, v, w) :: !violations);
      if s + 1 < tiling.sweeps then begin
        let th' = tiling.theta.(s + 1) in
        if th.(v) > th'.(v) then violations := (`C3, s, v, v) :: !violations;
        Irgraph.Csr.iter_neighbors graph v (fun w ->
            if th.(w) > th'.(v) then violations := (`C2, s, w, v) :: !violations)
      end
    done
  done;
  List.rev !violations

(* The tiling as a flat executor schedule: sweep [s] is chain position
   [s], member nodes ascending within each (tile, sweep) row. *)
let schedule tiling =
  Reorder.Schedule.of_tile_fns
    (Array.map
       (fun th ->
         { Reorder.Sparse_tile.n_tiles = tiling.n_tiles; tile_of = th })
       tiling.theta)

(* Walk one tile of the flat schedule: sweeps in order, member nodes in
   numbering order. [update] itself stays bounds-checked (it chases
   graph adjacency), only the schedule rows stream flat. *)
let run_tile t (sched : Reorder.Schedule.t) ~tile =
  let nl = Reorder.Schedule.n_loops sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  for s = 0 to nl - 1 do
    let r = (tile * nl) + s in
    for i = rp.(r) to rp.(r + 1) - 1 do
      update t fl.(i)
    done
  done

(* Walk a flat schedule directly — tiles in order, sweeps (chain
   positions) in order within a tile, member nodes in row order.
   [run_tiled] is [run_sched] of [schedule tiling]; exposing the
   schedule-level walk lets the specialization tiers compare against
   the same interpreted baseline as the other kernels. *)
let run_sched t (sched : Reorder.Schedule.t) =
  for tile = 0 to Reorder.Schedule.n_tiles sched - 1 do
    run_tile t sched ~tile
  done

(* Tier A shape-specialized twin of [run_sched]: streams each row's
   run-length index as [for v = lo to hi] ranges. [update] itself
   stays bounds-checked (it chases graph adjacency), so the shape only
   has to come from this exact schedule for the walks to coincide
   bitwise. *)
let run_sched_shaped t (sched : Reorder.Schedule.t) (shape : Reorder.Shape.t) =
  if not (Reorder.Shape.for_schedule shape sched) then
    invalid_arg
      "Gauss_seidel.run_sched_shaped: shape built from a different schedule";
  let nl = Reorder.Schedule.n_loops sched in
  let rq = Reorder.Shape.run_ptr shape in
  let rlo = Reorder.Shape.run_lo shape in
  let rln = Reorder.Shape.run_len shape in
  for tile = 0 to Reorder.Schedule.n_tiles sched - 1 do
    for s = 0 to nl - 1 do
      let r = (tile * nl) + s in
      for k = rq.(r) to rq.(r + 1) - 1 do
        let lo = rlo.(k) in
        for v = lo to lo + rln.(k) - 1 do
          update t v
        done
      done
    done
  done

let run_tiled t tiling = run_sched t (schedule tiling)

(* The graph's CSR arrays (adjacency in [iter_neighbors] order), for
   the Tier B executor emitter: generated code re-chases adjacency
   through plain int arrays instead of the Csr abstraction. *)
let csr_arrays graph =
  let n = Irgraph.Csr.num_nodes graph in
  let ptr = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    ptr.(v + 1) <- ptr.(v) + Irgraph.Csr.degree graph v
  done;
  let adj = Array.make ptr.(n) 0 in
  let pos = ref 0 in
  for v = 0 to n - 1 do
    Irgraph.Csr.iter_neighbors graph v (fun w ->
        adj.(!pos) <- w;
        incr pos)
  done;
  (ptr, adj)

(* Execute [total_sweeps] as consecutive slabs of the tiling's depth:
   temporal blocking in the usual sense. Tile growth smears by one
   graph layer per sweep away from the seed, so deep tilings
   degenerate; re-tiling every [tiling.sweeps] sweeps keeps tiles
   compact while preserving exact Gauss-Seidel semantics (each slab is
   exactly [tiling.sweeps] plain sweeps). [total_sweeps] must be a
   multiple of the slab depth. *)
let run_tiled_slabbed t tiling ~total_sweeps =
  if total_sweeps mod tiling.sweeps <> 0 then
    invalid_arg "Gauss_seidel.run_tiled_slabbed: sweeps not a multiple";
  for _slab = 1 to total_sweeps / tiling.sweeps do
    run_tiled t tiling
  done

(* Tile dependence DAG of a tiling, levelized. Edges follow the three
   constraint families, which all ascend in tile id when the tiling is
   legal (an illegal tiling makes [Tile_par.of_edges] raise): C1 links
   within-sweep adjacent nodes in different tiles, C2 links a node's
   sweep-s neighbors to its sweep-(s+1) tile, C3 links a node's own
   consecutive-sweep tiles. Any two tiles that share any value version
   of u are therefore connected, so same-level tiles are fully
   independent and may run concurrently with bitwise-serial results. *)
let tile_dag graph tiling =
  let n = Irgraph.Csr.num_nodes graph in
  let n_tiles = tiling.n_tiles in
  Irgraph.Scratch.with_buf @@ fun buf ->
  let add ta tb =
    if ta <> tb then Irgraph.Scratch.push buf ((ta * n_tiles) + tb)
  in
  for s = 0 to tiling.sweeps - 1 do
    let th = tiling.theta.(s) in
    for v = 0 to n - 1 do
      Irgraph.Csr.iter_neighbors graph v (fun w ->
          if v < w then add th.(v) th.(w));
      if s + 1 < tiling.sweeps then begin
        let th' = tiling.theta.(s + 1) in
        add th.(v) th'.(v);
        Irgraph.Csr.iter_neighbors graph v (fun w -> add th.(w) th'.(v))
      end
    done
  done;
  let tile_cost = Array.make n_tiles 0 in
  Array.iter
    (fun th -> Array.iter (fun t -> tile_cost.(t) <- tile_cost.(t) + 1) th)
    tiling.theta;
  Irgraph.Scratch.sort_dedup buf;
  let edges =
    Array.init (Irgraph.Scratch.length buf) (fun i ->
        let key = Irgraph.Scratch.get buf i in
        (key / n_tiles, key mod n_tiles))
  in
  Reorder.Tile_par.of_edges ~n_tiles ~tile_cost edges

(* Run the tiling with same-level tiles concurrent (tiles atomic:
   sweeps in order, member nodes in numbering order, exactly as
   [run_tiled]). Bitwise equal to [run_tiled]: conflicting tile pairs
   all have DAG edges and execute in the same relative order, and
   edge-free pairs touch disjoint value versions. *)
let run_tiled_par ~pool t tiling (par : Reorder.Tile_par.t) =
  let sched = schedule tiling in
  Rtrt_par.Exec.run_levels ~pool ~levels:par.Reorder.Tile_par.levels
    ~weight:(fun tile -> par.Reorder.Tile_par.tile_cost.(tile))
    (fun tile -> run_tile t sched ~tile)

(* Dependences of one Gauss-Seidel sweep for wavefront scheduling:
   node [v] depends on its lower-numbered neighbors (whose
   current-sweep values it reads). Higher-numbered neighbors list [v]
   as a predecessor in turn, so adjacent nodes never share a wavefront
   level and in-place parallel execution of a level is exact. *)
let wavefront_preds graph =
  let n = Irgraph.Csr.num_nodes graph in
  Reorder.Access.of_touches ~sort_rows:true ~n_iter:n ~n_data:n (fun v emit ->
      Irgraph.Csr.iter_neighbors graph v (fun w -> if w < v then emit w))

(* [sweeps] plain sweeps with each wavefront level's nodes updated
   concurrently; bitwise equal to [run_plain] because a level never
   contains two adjacent nodes (each reads only values written in
   earlier or later levels, the same versions the serial sweep
   reads). All sweeps execute inside one pool dispatch
   ([~rounds:sweeps]), synchronized by in-job barriers. *)
let run_wavefront_par ~pool t (w : Reorder.Wavefront.t) ~sweeps =
  let weight v = Irgraph.Csr.degree t.graph v in
  Rtrt_par.Exec.run_levels ~rounds:sweeps ~pool
    ~levels:w.Reorder.Wavefront.levels ~weight (update t)

(* Traced executors for the cache model: u and f are the two arrays. *)
let trace_update graph ~touch_u ~touch_f v =
  touch_f v;
  Irgraph.Csr.iter_neighbors graph v (fun w -> ignore (touch_u w : unit));
  touch_u v

let run_traced t ~sweeps ~layout ~access =
  let addr_u = Cachesim.Layout.addresser layout "u" in
  let addr_f = Cachesim.Layout.addresser layout "f" in
  let touch_u v = access (addr_u v) in
  let touch_f v = access (addr_f v) in
  let n = Irgraph.Csr.num_nodes t.graph in
  for _s = 1 to sweeps do
    for v = 0 to n - 1 do
      trace_update t.graph ~touch_u ~touch_f v
    done
  done

let run_tiled_traced ?(slabs = 1) t tiling ~layout ~access =
  let addr_u = Cachesim.Layout.addresser layout "u" in
  let addr_f = Cachesim.Layout.addresser layout "f" in
  let touch_u v = access (addr_u v) in
  let touch_f v = access (addr_f v) in
  let sched = schedule tiling in
  let nl = Reorder.Schedule.n_loops sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  for _slab = 1 to slabs do
    for tile = 0 to Reorder.Schedule.n_tiles sched - 1 do
      for s = 0 to nl - 1 do
        let r = (tile * nl) + s in
        for i = rp.(r) to rp.(r + 1) - 1 do
          trace_update t.graph ~touch_u ~touch_f fl.(i)
        done
      done
    done
  done

let layout t =
  let n = Irgraph.Csr.num_nodes t.graph in
  Cachesim.Layout.grouped ~groups:[ [ ("u", n); ("f", n) ] ] ()

(* Renumber the mesh so a partition's blocks are consecutive; returns
   the permuted problem, the permutation, and the seed tile function
   (which is monotone in the new numbering by construction). *)
let renumber_by_partition graph ~f ~partition =
  let members = Irgraph.Partition.members partition in
  let n = Irgraph.Csr.num_nodes graph in
  let inv = Array.make n 0 in
  let pos = ref 0 in
  Array.iter
    (fun part -> Array.iter (fun v -> inv.(!pos) <- v; incr pos) part)
    members;
  let sigma = Reorder.Perm.of_inverse inv in
  let fwd = Reorder.Perm.to_forward_array sigma in
  let edges =
    Array.map (fun (a, b) -> (fwd.(a), fwd.(b))) (Irgraph.Csr.edges graph)
  in
  let graph' = Irgraph.Csr.of_edges ~n edges in
  let f' = Reorder.Perm.apply_to_float_array sigma f in
  let tile_of = Array.make n 0 in
  Array.iteri
    (fun v part -> tile_of.(fwd.(v)) <- part)
    (Irgraph.Partition.assignment partition);
  ( graph',
    f',
    sigma,
    { Reorder.Sparse_tile.n_tiles = Irgraph.Partition.n_parts partition; tile_of } )
