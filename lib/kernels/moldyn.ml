(* The moldyn benchmark (non-bonded force molecular dynamics, Figure 1
   of the paper generalized to 3-D): 9 node arrays of doubles — 72
   bytes per molecule, the figure the paper quotes when explaining why
   data reordering alone saturates on a 64-byte-line machine.

   Loop chain per time step:
     S1 (i loop): position update     x += vx + fx        (writes x)
     S2/S3 (j loop): pairwise forces  fx[l] += g, fx[r] -= g
     S4 (k loop): velocity update     vx += fx            (reads fx) *)

type state = {
  n : int;
  m : int;
  left : int array;
  right : int array;
  x : float array;
  y : float array;
  z : float array;
  vx : float array;
  vy : float array;
  vz : float array;
  fx : float array;
  fy : float array;
  fz : float array;
  (* Endpoint-scan memo: left/right are never mutated in place within
     one state (transformations build new states), so one successful
     scan validates every later executor run on this state. *)
  mutable endpoints_ok : bool;
}

let dt = 0.0001

let node_array_names = [ "x"; "y"; "z"; "vx"; "vy"; "vz"; "fx"; "fy"; "fz" ]
let inter_array_names = [ "left"; "right" ]

let run_plain st ~steps =
  let n = st.n and m = st.m in
  let x = st.x and y = st.y and z = st.z in
  let vx = st.vx and vy = st.vy and vz = st.vz in
  let fx = st.fx and fy = st.fy and fz = st.fz in
  let left = st.left and right = st.right in
  for _s = 1 to steps do
    for i = 0 to n - 1 do
      x.(i) <- x.(i) +. (dt *. (vx.(i) +. fx.(i)));
      y.(i) <- y.(i) +. (dt *. (vy.(i) +. fy.(i)));
      z.(i) <- z.(i) +. (dt *. (vz.(i) +. fz.(i)))
    done;
    for j = 0 to m - 1 do
      let l = left.(j) and r = right.(j) in
      let dx = x.(l) -. x.(r) in
      let dy = y.(l) -. y.(r) in
      let dz = z.(l) -. z.(r) in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 1.0 in
      let g = 1.0 /. r2 in
      fx.(l) <- fx.(l) +. (g *. dx);
      fx.(r) <- fx.(r) -. (g *. dx);
      fy.(l) <- fy.(l) +. (g *. dy);
      fy.(r) <- fy.(r) -. (g *. dy);
      fz.(l) <- fz.(l) +. (g *. dz);
      fz.(r) <- fz.(r) -. (g *. dz)
    done;
    for k = 0 to n - 1 do
      vx.(k) <- vx.(k) +. (dt *. fx.(k));
      vy.(k) <- vy.(k) +. (dt *. fy.(k));
      vz.(k) <- vz.(k) +. (dt *. fz.(k))
    done
  done

(* The tiled executor interprets a schedule whose loop count is any
   multiple of the 3-loop chain: chain position c executes the body of
   loop (c mod 3). A 3-loop schedule is the Figure 14 executor; a
   3S-loop schedule executes S whole time steps per [steps] (time-step
   sparse tiling across the outer loop).

   Validated-once-then-unsafe: [Schedule.check_fits] plus the
   endpoint-range scan below guarantee every index the loop bodies
   compute is in bounds, so the steady state streams the flat schedule
   and the data arrays with [Array.unsafe_get]/[unsafe_set]. *)

let check_endpoints ~who ~n ~m left right =
  if Array.length left <> m || Array.length right <> m then
    invalid_arg (who ^ ": endpoint array size mismatch");
  for j = 0 to m - 1 do
    let l = left.(j) and r = right.(j) in
    if l < 0 || l >= n || r < 0 || r >= n then
      invalid_arg (who ^ ": interaction endpoint out of range")
  done

let check_endpoints_cached st ~who =
  if st.endpoints_ok then Kernel.endpoint_scan_skipped ()
  else begin
    check_endpoints ~who ~n:st.n ~m:st.m st.left st.right;
    st.endpoints_ok <- true
  end

let run_tiled_st st (sched : Reorder.Schedule.t) ~steps =
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.n; st.m; st.n |])
  then invalid_arg "Moldyn.run_tiled: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Moldyn.run_tiled";
  let x = st.x and y = st.y and z = st.z in
  let vx = st.vx and vy = st.vy and vz = st.vz in
  let fx = st.fx and fy = st.fy and fz = st.fz in
  let left = st.left and right = st.right in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let r = (t * n_chain) + c in
        let lo = Array.unsafe_get rp r and hi = Array.unsafe_get rp (r + 1) in
        match c mod 3 with
        | 0 ->
          for idx = lo to hi - 1 do
            let i = Array.unsafe_get fl idx in
            Array.unsafe_set x i
              (Array.unsafe_get x i
              +. (dt *. (Array.unsafe_get vx i +. Array.unsafe_get fx i)));
            Array.unsafe_set y i
              (Array.unsafe_get y i
              +. (dt *. (Array.unsafe_get vy i +. Array.unsafe_get fy i)));
            Array.unsafe_set z i
              (Array.unsafe_get z i
              +. (dt *. (Array.unsafe_get vz i +. Array.unsafe_get fz i)))
          done
        | 1 ->
          for idx = lo to hi - 1 do
            let j = Array.unsafe_get fl idx in
            let l = Array.unsafe_get left j and r = Array.unsafe_get right j in
            let dx = Array.unsafe_get x l -. Array.unsafe_get x r in
            let dy = Array.unsafe_get y l -. Array.unsafe_get y r in
            let dz = Array.unsafe_get z l -. Array.unsafe_get z r in
            let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 1.0 in
            let g = 1.0 /. r2 in
            Array.unsafe_set fx l (Array.unsafe_get fx l +. (g *. dx));
            Array.unsafe_set fx r (Array.unsafe_get fx r -. (g *. dx));
            Array.unsafe_set fy l (Array.unsafe_get fy l +. (g *. dy));
            Array.unsafe_set fy r (Array.unsafe_get fy r -. (g *. dy));
            Array.unsafe_set fz l (Array.unsafe_get fz l +. (g *. dz));
            Array.unsafe_set fz r (Array.unsafe_get fz r -. (g *. dz))
          done
        | _ ->
          for idx = lo to hi - 1 do
            let k = Array.unsafe_get fl idx in
            Array.unsafe_set vx k
              (Array.unsafe_get vx k +. (dt *. Array.unsafe_get fx k));
            Array.unsafe_set vy k
              (Array.unsafe_get vy k +. (dt *. Array.unsafe_get fy k));
            Array.unsafe_set vz k
              (Array.unsafe_get vz k +. (dt *. Array.unsafe_get fz k))
          done
      done
    done
  done

(* Tier A shape-specialized twin of [run_tiled_st]: iterates each row's
   maximal runs as [for i = lo to hi] ranges instead of loading every
   iteration id from the items array. Visits the same iterations in
   the same order, so results are bitwise [run_tiled_st]'s; the run
   index is only trusted after [Shape.for_schedule] proves it was
   built from this very schedule (which [check_fits] then validates as
   usual). *)
let run_shaped_st st (sched : Reorder.Schedule.t) (shape : Reorder.Shape.t)
    ~steps =
  if not (Reorder.Shape.for_schedule shape sched) then
    invalid_arg "Moldyn.run_shaped: shape built from a different schedule";
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.n; st.m; st.n |])
  then invalid_arg "Moldyn.run_shaped: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Moldyn.run_shaped";
  let x = st.x and y = st.y and z = st.z in
  let vx = st.vx and vy = st.vy and vz = st.vz in
  let fx = st.fx and fy = st.fy and fz = st.fz in
  let left = st.left and right = st.right in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  let rq = Reorder.Shape.run_ptr shape in
  let rlo = Reorder.Shape.run_lo shape in
  let rln = Reorder.Shape.run_len shape in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let r = (t * n_chain) + c in
        let klo = Array.unsafe_get rq r and khi = Array.unsafe_get rq (r + 1) in
        match c mod 3 with
        | 0 ->
          for k = klo to khi - 1 do
            let lo = Array.unsafe_get rlo k in
            let hi = lo + Array.unsafe_get rln k - 1 in
            for i = lo to hi do
              Array.unsafe_set x i
                (Array.unsafe_get x i
                +. (dt *. (Array.unsafe_get vx i +. Array.unsafe_get fx i)));
              Array.unsafe_set y i
                (Array.unsafe_get y i
                +. (dt *. (Array.unsafe_get vy i +. Array.unsafe_get fy i)));
              Array.unsafe_set z i
                (Array.unsafe_get z i
                +. (dt *. (Array.unsafe_get vz i +. Array.unsafe_get fz i)))
            done
          done
        | 1 ->
          for k = klo to khi - 1 do
            let lo = Array.unsafe_get rlo k in
            let hi = lo + Array.unsafe_get rln k - 1 in
            for j = lo to hi do
              let l = Array.unsafe_get left j
              and r = Array.unsafe_get right j in
              let dx = Array.unsafe_get x l -. Array.unsafe_get x r in
              let dy = Array.unsafe_get y l -. Array.unsafe_get y r in
              let dz = Array.unsafe_get z l -. Array.unsafe_get z r in
              let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 1.0 in
              let g = 1.0 /. r2 in
              Array.unsafe_set fx l (Array.unsafe_get fx l +. (g *. dx));
              Array.unsafe_set fx r (Array.unsafe_get fx r -. (g *. dx));
              Array.unsafe_set fy l (Array.unsafe_get fy l +. (g *. dy));
              Array.unsafe_set fy r (Array.unsafe_get fy r -. (g *. dy));
              Array.unsafe_set fz l (Array.unsafe_get fz l +. (g *. dz));
              Array.unsafe_set fz r (Array.unsafe_get fz r -. (g *. dz))
            done
          done
        | _ ->
          for k = klo to khi - 1 do
            let lo = Array.unsafe_get rlo k in
            let hi = lo + Array.unsafe_get rln k - 1 in
            for i = lo to hi do
              Array.unsafe_set vx i
                (Array.unsafe_get vx i +. (dt *. Array.unsafe_get fx i));
              Array.unsafe_set vy i
                (Array.unsafe_get vy i +. (dt *. Array.unsafe_get fy i));
              Array.unsafe_set vz i
                (Array.unsafe_get vz i +. (dt *. Array.unsafe_get fz i))
            done
          done
      done
    done
  done

(* Parallel tiled executor: chain positions with c mod 3 = 1 are the
   pairwise-force reductions. [stash] computes each interaction's
   contribution g*dx (etc.) into per-interaction scratch — a pure
   function of x/y/z, which are read-only during the position — and
   [apply] folds the contributions into fx/fy/fz per datum in the
   serial order, so the result is bitwise the serial executor's. *)
let plan_par_st st ~pool sched ~level_of =
  if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| st.n; st.m; st.n |])
  then invalid_arg "Moldyn.plan_par: schedule does not fit the kernel";
  check_endpoints_cached st ~who:"Moldyn.plan_par";
  let x = st.x and y = st.y and z = st.z in
  let vx = st.vx and vy = st.vy and vz = st.vz in
  let fx = st.fx and fy = st.fy and fz = st.fz in
  let left = st.left and right = st.right in
  let gx = Array.make st.m 0.0 in
  let gy = Array.make st.m 0.0 in
  let gz = Array.make st.m 0.0 in
  let exec =
    Rtrt_par.Exec.make ~pool ~sched ~level_of
      ~is_reduction:(fun c -> c mod 3 = 1)
      ~left ~right ~n_data:st.n
  in
  let body ~pos items lo hi =
    match pos mod 3 with
    | 0 ->
      for idx = lo to hi - 1 do
        let i = Array.unsafe_get items idx in
        Array.unsafe_set x i
          (Array.unsafe_get x i
          +. (dt *. (Array.unsafe_get vx i +. Array.unsafe_get fx i)));
        Array.unsafe_set y i
          (Array.unsafe_get y i
          +. (dt *. (Array.unsafe_get vy i +. Array.unsafe_get fy i)));
        Array.unsafe_set z i
          (Array.unsafe_get z i
          +. (dt *. (Array.unsafe_get vz i +. Array.unsafe_get fz i)))
      done
    | 1 ->
      for idx = lo to hi - 1 do
        let j = Array.unsafe_get items idx in
        let l = Array.unsafe_get left j and r = Array.unsafe_get right j in
        let dx = Array.unsafe_get x l -. Array.unsafe_get x r in
        let dy = Array.unsafe_get y l -. Array.unsafe_get y r in
        let dz = Array.unsafe_get z l -. Array.unsafe_get z r in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 1.0 in
        let g = 1.0 /. r2 in
        Array.unsafe_set fx l (Array.unsafe_get fx l +. (g *. dx));
        Array.unsafe_set fx r (Array.unsafe_get fx r -. (g *. dx));
        Array.unsafe_set fy l (Array.unsafe_get fy l +. (g *. dy));
        Array.unsafe_set fy r (Array.unsafe_get fy r -. (g *. dy));
        Array.unsafe_set fz l (Array.unsafe_get fz l +. (g *. dz));
        Array.unsafe_set fz r (Array.unsafe_get fz r -. (g *. dz))
      done
    | _ ->
      for idx = lo to hi - 1 do
        let k = Array.unsafe_get items idx in
        Array.unsafe_set vx k
          (Array.unsafe_get vx k +. (dt *. Array.unsafe_get fx k));
        Array.unsafe_set vy k
          (Array.unsafe_get vy k +. (dt *. Array.unsafe_get fy k));
        Array.unsafe_set vz k
          (Array.unsafe_get vz k +. (dt *. Array.unsafe_get fz k))
      done
  in
  let stash ~pos:_ items lo hi =
    for idx = lo to hi - 1 do
      let j = Array.unsafe_get items idx in
      let l = Array.unsafe_get left j and r = Array.unsafe_get right j in
      let dx = Array.unsafe_get x l -. Array.unsafe_get x r in
      let dy = Array.unsafe_get y l -. Array.unsafe_get y r in
      let dz = Array.unsafe_get z l -. Array.unsafe_get z r in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 1.0 in
      let g = 1.0 /. r2 in
      Array.unsafe_set gx j (g *. dx);
      Array.unsafe_set gy j (g *. dy);
      Array.unsafe_set gz j (g *. dz)
    done
  in
  let apply ~pos:_ ~datum refs lo hi =
    for k = lo to hi - 1 do
      let rv = refs.(k) in
      let j = rv lsr 1 in
      if rv land 1 = 0 then begin
        fx.(datum) <- fx.(datum) +. gx.(j);
        fy.(datum) <- fy.(datum) +. gy.(j);
        fz.(datum) <- fz.(datum) +. gz.(j)
      end
      else begin
        fx.(datum) <- fx.(datum) -. gx.(j);
        fy.(datum) <- fy.(datum) -. gy.(j);
        fz.(datum) <- fz.(datum) -. gz.(j)
      end
    done
  in
  {
    Kernel.par_sched = Rtrt_par.Exec.schedule exec;
    par_run =
      (fun ?batch ?tier ?profile ~steps () ->
        Rtrt_par.Exec.run ?batch ?tier ?profile exec ~steps ~body ~stash
          ~apply);
    par_decide =
      (fun ~serial_ns_per_step ~batch ->
        Rtrt_par.Exec.decide exec ~serial_ns_per_step ~batch);
  }

(* Traced executors: the reference stream is data-independent given the
   index arrays, so no arithmetic is performed. One touch per distinct
   array-element reference in the loop body. *)
let trace_i ~touch i =
  touch 0 i; touch 1 i; touch 2 i;     (* x y z *)
  touch 3 i; touch 4 i; touch 5 i;     (* vx vy vz *)
  touch 6 i; touch 7 i; touch 8 i      (* fx fy fz *)

let trace_j ~touch ~touch_inter left right j =
  touch_inter 0 j;
  touch_inter 1 j;
  let l = left.(j) and r = right.(j) in
  touch 0 l; touch 1 l; touch 2 l;
  touch 0 r; touch 1 r; touch 2 r;
  touch 6 l; touch 7 l; touch 8 l;
  touch 6 r; touch 7 r; touch 8 r

let trace_k ~touch k =
  touch 3 k; touch 4 k; touch 5 k;
  touch 6 k; touch 7 k; touch 8 k

let make_touch ~layout ~access names =
  let addr =
    Array.of_list (List.map (Cachesim.Layout.addresser layout) names)
  in
  fun a i -> access (addr.(a) i)

let run_traced_st st ~steps ~layout ~access =
  let touch = make_touch ~layout ~access node_array_names in
  let touch_inter = make_touch ~layout ~access inter_array_names in
  for _s = 1 to steps do
    for i = 0 to st.n - 1 do
      trace_i ~touch i
    done;
    for j = 0 to st.m - 1 do
      trace_j ~touch ~touch_inter st.left st.right j
    done;
    for k = 0 to st.n - 1 do
      trace_k ~touch k
    done
  done

(* Traced twin of [run_tiled_st]: walks the same flat rows but keeps
   every access bounds-checked — the non-unsafe twin path. *)
let run_tiled_traced_st st sched ~steps ~layout ~access =
  let touch = make_touch ~layout ~access node_array_names in
  let touch_inter = make_touch ~layout ~access inter_array_names in
  let n_tiles = Reorder.Schedule.n_tiles sched in
  let n_chain = Reorder.Schedule.n_loops sched in
  let rp = Reorder.Schedule.row_ptr sched in
  let fl = Reorder.Schedule.flat_items sched in
  for _s = 1 to steps do
    for t = 0 to n_tiles - 1 do
      for c = 0 to n_chain - 1 do
        let r = (t * n_chain) + c in
        let lo = rp.(r) and hi = rp.(r + 1) in
        match c mod 3 with
        | 0 -> for i = lo to hi - 1 do trace_i ~touch fl.(i) done
        | 1 ->
          for i = lo to hi - 1 do
            trace_j ~touch ~touch_inter st.left st.right fl.(i)
          done
        | _ -> for i = lo to hi - 1 do trace_k ~touch fl.(i) done
      done
    done
  done

let rec make st =
  let access = Reorder.Access.of_pairs ~n_data:st.n st.left st.right in
  (* The chain's two dependence sets are symmetric (both constrained by
     left/right, Section 6): conn.(1) is the transpose that backward
     growth of loop 0 also needs. *)
  let chain_of_access acc =
    Reorder.Sparse_tile.make_chain
      ~loop_sizes:[| st.n; st.m; st.n |]
      ~conn:[| acc; Reorder.Access.transpose acc |]
  in
  let apply_data_perm sigma =
    make
      {
        st with
        endpoints_ok = false;
        left = Reorder.Perm.remap_values sigma st.left;
        right = Reorder.Perm.remap_values sigma st.right;
        x = Reorder.Perm.apply_to_float_array sigma st.x;
        y = Reorder.Perm.apply_to_float_array sigma st.y;
        z = Reorder.Perm.apply_to_float_array sigma st.z;
        vx = Reorder.Perm.apply_to_float_array sigma st.vx;
        vy = Reorder.Perm.apply_to_float_array sigma st.vy;
        vz = Reorder.Perm.apply_to_float_array sigma st.vz;
        fx = Reorder.Perm.apply_to_float_array sigma st.fx;
        fy = Reorder.Perm.apply_to_float_array sigma st.fy;
        fz = Reorder.Perm.apply_to_float_array sigma st.fz;
      }
  in
  let apply_iter_perm delta =
    make
      {
        st with
        endpoints_ok = false;
        left = Reorder.Perm.apply_to_array delta st.left;
        right = Reorder.Perm.apply_to_array delta st.right;
      }
  in
  {
    Kernel.name = "moldyn";
    n_nodes = st.n;
    n_inter = st.m;
    node_array_names;
    inter_array_names;
    access;
    loop_sizes = [| st.n; st.m; st.n |];
    seed_loop = 1;
    chain_of_access;
    wrap_conn_of_access = (fun _acc -> Reorder.Access.identity st.n);
    symmetric_backward = [ (0, 1) ];
    apply_data_perm;
    apply_iter_perm;
    run = (fun ~steps -> run_plain st ~steps);
    run_tiled = (fun sched ~steps -> run_tiled_st st sched ~steps);
    run_tiled_shaped =
      (fun sched shape ~steps -> run_shaped_st st sched shape ~steps);
    exec_arrays =
      (fun () ->
        ( [| st.left; st.right |],
          [| st.x; st.y; st.z; st.vx; st.vy; st.vz; st.fx; st.fy; st.fz |] ));
    run_traced =
      (fun ~steps ~layout ~access -> run_traced_st st ~steps ~layout ~access);
    run_tiled_traced =
      (fun sched ~steps ~layout ~access ->
        run_tiled_traced_st st sched ~steps ~layout ~access);
    plan_par =
      (fun ~pool sched ~level_of -> plan_par_st st ~pool sched ~level_of);
    snapshot =
      (fun () ->
        [
          ("x", Array.copy st.x);
          ("y", Array.copy st.y);
          ("z", Array.copy st.z);
          ("vx", Array.copy st.vx);
          ("vy", Array.copy st.vy);
          ("vz", Array.copy st.vz);
          ("fx", Array.copy st.fx);
          ("fy", Array.copy st.fy);
          ("fz", Array.copy st.fz);
        ]);
    copy =
      (fun () ->
        make
          {
            st with
            endpoints_ok = false;
            left = Array.copy st.left;
            right = Array.copy st.right;
            x = Array.copy st.x;
            y = Array.copy st.y;
            z = Array.copy st.z;
            vx = Array.copy st.vx;
            vy = Array.copy st.vy;
            vz = Array.copy st.vz;
            fx = Array.copy st.fx;
            fy = Array.copy st.fy;
            fz = Array.copy st.fz;
          });
  }

(* Deterministic initial conditions derived from node ids, so two runs
   on permuted data remain comparable after un-permuting. *)
let init_value ~salt i =
  let h = ((i + 1) * 2654435761) land 0xFFFFFF in
  float_of_int ((h lxor salt) land 0xFFFF) /. 65536.0

let of_dataset (d : Datagen.Dataset.t) =
  let n = d.Datagen.Dataset.n_nodes in
  let m = Datagen.Dataset.n_interactions d in
  make
    {
      n;
      m;
      left = Array.copy d.Datagen.Dataset.left;
      right = Array.copy d.Datagen.Dataset.right;
      x = Array.init n (init_value ~salt:1);
      y = Array.init n (init_value ~salt:2);
      z = Array.init n (init_value ~salt:3);
      vx = Array.init n (init_value ~salt:4);
      vy = Array.init n (init_value ~salt:5);
      vz = Array.init n (init_value ~salt:6);
      fx = Array.make n 0.0;
      fy = Array.make n 0.0;
      fz = Array.make n 0.0;
      endpoints_ok = false;
    }
