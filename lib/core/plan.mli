(** Validated compositions of run-time reordering transformations,
    including the standard compositions of the paper's evaluation. *)

type t

val make : name:string -> Transform.t list -> t
val transforms : t -> Transform.t list
val name : t -> string

(** Number of data reorderings (= remap passes for a Remap_each
    inspector; Section 6 / Figure 16). *)
val n_data_reorders : t -> int

val has_sparse_tiling : t -> bool

(** Static composition rules (Section 4): no dependence-free iteration
    reordering after sparse tiling, tilePack only after sparse tiling,
    at most one sparse tiling. *)
val validate : t -> (unit, string) result

(** The empty composition. *)
val base : t

val cpack : t

(** CPACK followed by lexGroup ("CL"). *)
val cpack_lexgroup : t

(** Gpart followed by lexGroup ("GL"). *)
val gpart_lexgroup : part_size:int -> t

(** Gpart followed by CPACK ("GC"): two data reorderings back to
    back, the composition the fused inspector benchmark times. *)
val gpart_cpack : part_size:int -> t

(** CPACK, lexGroup, CPACK, lexGroup ("CLCL", Section 5.3). *)
val cpack_lexgroup_twice : t

(** Append full sparse tiling (block seed) and, by default, tilePack. *)
val with_fst : ?tile_pack:bool -> seed_part_size:int -> t -> t

(** Append cache blocking. *)
val with_cache_block : seed_part_size:int -> t -> t

(** The hand-named compositions of Figures 6-9 plus GC and GC+FST:
    base, cpack, CL, GL, GC, CLCL, and the +FST extensions of CL, GL,
    GC, and CLCL. *)
val standard_suite : gpart_size:int -> seed_part_size:int -> t list

(** The autotuner's candidate space: every composition over
    {cpack, gpart, lexGroup, lexSort, FST, tilePack} with at most two
    data/iteration reordering stages followed by an optional full
    sparse tiling (with or without tilePack), pruned by {!validate}
    and deduplicated. Contains {!standard_suite} as a subset. *)
val candidates : gpart_size:int -> seed_part_size:int -> t list

val pp : t Fmt.t
