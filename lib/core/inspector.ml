(* The composed run-time inspector (Section 5 / Figures 11 and 15).

   Given a plan and a kernel, run each transformation's inspector
   against the data mappings and dependences *as modified by the
   previously planned inspectors*, producing the composed reordering
   functions, the transformed kernel for the executor, and (when the
   plan sparse-tiles) the tile schedule.

   Three remap strategies realize the Section 6 overhead trade-off:
   - [Remap_each] (Figure 15): every transformation immediately
     remaps the kernel's data and index arrays, so later inspectors
     traverse plain arrays;
   - [Remap_once] (Figure 11): inspectors traverse a working copy of
     the index arrays (adjusted after every transformation, which the
     paper found cheapest) while the data arrays are remapped a single
     time, at the very end, through the composed sigma;
   - [Fused]: inspectors traverse a *view* of the original index
     arrays through the composed (sigma, delta) accumulators, so a
     composition performs one pass over the access per transformation,
     one in-place pointer update per reordering function
     ([Perm.compose_into] over scratch-backed accumulators), and one
     final data remap. Even the schedule's identity-loop renames are
     deferred and applied once through the composed post-tiling
     rename.

   All strategies produce identical results; only the inspector cost
   differs (Figure 16 measures the difference). *)

open Reorder

type strategy = Remap_each | Remap_once | Fused

type result = {
  kernel : Kernels.Kernel.t; (* transformed kernel for the executor *)
  schedule : Schedule.t option;
  sigma_total : Perm.t; (* composed data reordering *)
  delta_total : Perm.t; (* composed interaction-loop reordering *)
  inspector_seconds : float;
  n_data_remaps : int; (* full data-array remap passes performed *)
  (* Each generated reordering function, named exactly as the symbolic
     layer names it (sigma_cp, delta_lg, sigma_cp2, ...), so the
     compile-time formulas can be evaluated against the run-time
     output. *)
  reordering_fns : (string * Perm.t) list;
  (* Plan-time shape analysis of the schedule — what the staged
     executor specialization keys its tier choice on. Cached with the
     plan; a warm replay surfaces the stored summary. *)
  shape_summary : Shape.summary option;
}

let invalid fmt = Fmt.kstr invalid_arg fmt

let c_data_remaps = Rtrt_obs.Metrics.counter "inspector.data_remaps"
let c_perms_composed = Rtrt_obs.Metrics.counter "inspector.permutations_composed"

(* Fused-path accounting: in-place compositions performed and view
   materializations that could not be avoided (transforms with no view
   traversal, or the sparse-tiling chain build). *)
let c_fused_compositions = Rtrt_obs.Metrics.counter "inspector.fused_compositions"
let c_fused_materializations =
  Rtrt_obs.Metrics.counter "inspector.fused_materializations"

(* Mutable walk state shared by all strategies. *)
type walk = {
  mutable kern : Kernels.Kernel.t; (* original (Remap_once/Fused) or current *)
  base : Access.t; (* the kernel's original access (the Fused basis) *)
  (* Remap_each/Remap_once: the access under all reorderings so far,
     always present. Fused: a lazily materialized cache of the
     (sigma, delta) view, invalidated by every composition. *)
  mutable work_access : Access.t option;
  sigma_acc : int array; (* composed data forward; live prefix n_nodes *)
  delta_acc : int array; (* composed iteration forward; prefix n_inter *)
  delta_inv : int array; (* inverse of [delta_acc]; prefix n_inter *)
  (* Fused: snapshot of [sigma_acc] when the schedule was created, so
     the identity-loop renames can be applied once at the end through
     the composed post-tiling rename. *)
  mutable sigma_at_tiling : int array option;
  mutable schedule : Schedule.t option;
  mutable remaps : int;
  mutable fns : (string * Perm.t) list; (* reverse order *)
  mutable counters : (string * int) list;
}

(* Fresh reordering-function names matching Symbolic.fresh_fn. *)
let fresh_fn walk base =
  let n =
    match List.assoc_opt base walk.counters with Some n -> n | None -> 0
  in
  walk.counters <- (base, n + 1) :: List.remove_assoc base walk.counters;
  if n = 0 then base else Fmt.str "%s%d" base (n + 1)

(* Returns the generated function's name so the enclosing span can
   record it. *)
let record_fn walk base perm =
  let name = fresh_fn walk base in
  walk.fns <- (name, perm) :: walk.fns;
  name

(* Serial twin of [Rtrt_par.Inspect.materialize]: the composed view as
   a concrete access, bit-identical to
   [Access.reorder_iters delta (Access.map_data sigma base)]. *)
let materialize_serial (base : Access.t) ~sigma ~delta_inv =
  let n_iter = Access.n_iter base and n_data = Access.n_data base in
  let bptr = base.Access.ptr and bdat = base.Access.dat in
  let ptr = Array.make (n_iter + 1) 0 in
  for cur = 0 to n_iter - 1 do
    let r = delta_inv.(cur) in
    ptr.(cur + 1) <- ptr.(cur) + (bptr.(r + 1) - bptr.(r))
  done;
  let dat = Array.make ptr.(n_iter) 0 in
  for cur = 0 to n_iter - 1 do
    let src = bptr.(delta_inv.(cur)) and dst = ptr.(cur) in
    for k = 0 to ptr.(cur + 1) - dst - 1 do
      dat.(dst + k) <- sigma.(bdat.(src + k))
    done
  done;
  Access.unsafe_make ~n_iter ~n_data ~ptr ~dat

(* The access under all reorderings so far. Remap strategies keep it
   eagerly materialized; Fused materializes the view on demand and
   caches it until the next composition invalidates it. *)
let current ?pool walk =
  match walk.work_access with
  | Some a -> a
  | None ->
    Rtrt_obs.Metrics.incr c_fused_materializations;
    let a =
      match pool with
      | Some pool ->
        Rtrt_par.Inspect.materialize ~pool walk.base ~sigma:walk.sigma_acc
          ~delta_inv:walk.delta_inv
      | None ->
        materialize_serial walk.base ~sigma:walk.sigma_acc
          ~delta_inv:walk.delta_inv
    in
    walk.work_access <- Some a;
    a

let data_perm walk strategy sigma_new =
  Rtrt_obs.Metrics.incr c_perms_composed;
  let prev = walk.work_access in
  Perm.compose_into sigma_new walk.sigma_acc;
  match strategy with
  | Fused ->
    (* Defer everything: later inspectors traverse the view through
       the updated accumulator; the schedule's identity loops are
       renamed once at finalization. *)
    Rtrt_obs.Metrics.incr c_fused_compositions;
    walk.work_access <- None
  | Remap_each | Remap_once ->
    let work = match prev with Some a -> a | None -> assert false in
    walk.work_access <- Some (Access.map_data sigma_new work);
    (match walk.schedule with
    | None -> ()
    | Some sched ->
      (* Identity-mapped loops are renamed by the data reordering
         (T_{I3->I4}); the interaction loop's ids are untouched. *)
      let seed = walk.kern.Kernels.Kernel.seed_loop in
      let sched' =
        List.fold_left
          (fun acc l ->
            if l = seed then acc else Schedule.remap_loop acc ~loop:l sigma_new)
          sched
          (List.init (Schedule.n_loops sched) Fun.id)
      in
      walk.schedule <- Some sched');
    (match strategy with
    | Remap_each ->
      walk.kern <- walk.kern.Kernels.Kernel.apply_data_perm sigma_new;
      walk.remaps <- walk.remaps + 1;
      Rtrt_obs.Metrics.incr c_data_remaps
    | _ -> ())

let iter_perm walk strategy delta_new =
  Rtrt_obs.Metrics.incr c_perms_composed;
  let prev = walk.work_access in
  Perm.compose_into delta_new walk.delta_acc;
  let n = Perm.size delta_new in
  for i = 0 to n - 1 do
    walk.delta_inv.(walk.delta_acc.(i)) <- i
  done;
  match strategy with
  | Fused ->
    Rtrt_obs.Metrics.incr c_fused_compositions;
    walk.work_access <- None
  | Remap_each | Remap_once ->
    let work = match prev with Some a -> a | None -> assert false in
    walk.work_access <- Some (Access.reorder_iters delta_new work);
    (match strategy with
    | Remap_each ->
      walk.kern <- walk.kern.Kernels.Kernel.apply_iter_perm delta_new
    | _ -> ())

let seed_tiles_of ?pool walk (seed : Transform.seed_partition) ~seed_loop ~work
    =
  let kern = walk.kern in
  let n_seed = kern.Kernels.Kernel.loop_sizes.(seed_loop) in
  match seed with
  | Transform.Seed_block { part_size } ->
    Sparse_tile.tile_fn_of_partition
      (Irgraph.Partition.block ~n:n_seed ~part_size)
  | Transform.Seed_gpart { part_size } ->
    (* Partition the data-affinity graph and key each seed-loop
       iteration by the partition of its first touch (for identity
       loops that *is* its datum). *)
    let g =
      match pool with
      | Some pool -> Rtrt_par.Inspect.to_graph ~pool work
      | None -> Access.to_graph work
    in
    let p = Irgraph.Partition.gpart g ~part_size in
    let assign = Irgraph.Partition.assignment p in
    let tile_of =
      if seed_loop = kern.Kernels.Kernel.seed_loop then
        Array.init n_seed (fun it -> assign.(Access.first_touch work it))
      else Array.init n_seed (fun v -> assign.(v))
    in
    { Sparse_tile.n_tiles = Irgraph.Partition.n_parts p; tile_of }

let sparse_tile ?pool walk strategy ~share_symmetric_deps growth seed =
  let kern = walk.kern in
  if walk.schedule <> None then invalid "Inspector: already sparse tiled";
  (* The chain build is the one fused stage that needs a concrete
     access (it is a kernel closure); the lazy cache makes it a single
     materialization. *)
  let work = current ?pool walk in
  let chain = kern.Kernels.Kernel.chain_of_access work in
  let tiles =
    match (growth : Transform.tile_growth) with
    | Transform.Full -> (
      let seed_loop = kern.Kernels.Kernel.seed_loop in
      let seed_tiles = seed_tiles_of ?pool walk seed ~seed_loop ~work in
      match (pool, strategy) with
      | Some pool, _ ->
        (* Pooled growth walks only the predecessor dependence set
           (scatter-min reconstructs the successor direction on the
           fly), so neither a transpose nor the shared symmetric twin
           is needed, whatever [share_symmetric_deps] says. *)
        Sparse_tile.full
          ~grow_backward:(Rtrt_par.Inspect.grow_backward ~pool)
          ~grow_forward:(Rtrt_par.Inspect.grow_forward ~pool)
          ~chain ~seed:seed_loop ~seed_tiles ()
      | None, Fused ->
        Sparse_tile.full ~grow_backward:Sparse_tile.grow_backward_scatter
          ~chain ~seed:seed_loop ~seed_tiles ()
      | None, (Remap_each | Remap_once) ->
        let shared_succ =
          if share_symmetric_deps then
            List.map
              (fun (l, conn_idx) -> (l, chain.Sparse_tile.conn.(conn_idx)))
              kern.Kernels.Kernel.symmetric_backward
          else []
        in
        Sparse_tile.full ~shared_succ ~chain ~seed:seed_loop ~seed_tiles ())
    | Transform.Cache_block ->
      let seed_tiles = seed_tiles_of ?pool walk seed ~seed_loop:0 ~work in
      Sparse_tile.cache_block ~chain ~seed_tiles
  in
  let violations =
    match pool with
    | Some pool -> Rtrt_par.Inspect.check_legality ~pool ~chain ~tiles
    | None -> Sparse_tile.check_legality ~chain ~tiles
  in
  (match violations with
  | [] -> ()
  | (l, a, b) :: _ ->
    invalid "Inspector: illegal tile function (loop pair %d, %d -> %d)" l a b);
  walk.schedule <- Some (Schedule.of_tile_fns tiles);
  if strategy = Fused then
    walk.sigma_at_tiling <-
      Some (Array.sub walk.sigma_acc 0 (Access.n_data work))

let strategy_name = function
  | Remap_each -> "remap_each"
  | Remap_once -> "remap_once"
  | Fused -> "fused"

(* [Fused] produces bit-identical results to [Remap_once] (it defers
   the same work instead of skipping it), so both share the
   "remap_once" fingerprint ingredient: entries written by either
   strategy replay for the other, and pre-existing caches keep
   hitting. The run-time agreement is verified at store time. *)
let fingerprint_strategy = function
  | Remap_each -> "remap_each"
  | Remap_once | Fused -> "remap_once"

(* Everything that determines the inspection outcome goes into the
   cache key: the kernel's shape and access pattern (the run-time
   data), the plan's transformations with their parameters (via
   [Transform.pp], which prints every parameter), the remap strategy
   (it changes [n_data_remaps]), and the symmetric-dependence flag (it
   changes tile growth). The plan *name* is deliberately excluded —
   two differently-named plans with the same transforms inspect
   identically. *)
let fingerprint ?(strategy = Remap_once) ?(share_symmetric_deps = true) plan
    (kernel : Kernels.Kernel.t) =
  let module F = Rtrt_plancache.Fingerprint in
  let b = F.create () in
  F.add_string b kernel.Kernels.Kernel.name;
  F.add_int b kernel.Kernels.Kernel.n_nodes;
  F.add_int b kernel.Kernels.Kernel.n_inter;
  F.add_int_array b kernel.Kernels.Kernel.loop_sizes;
  F.add_int b kernel.Kernels.Kernel.seed_loop;
  List.iter
    (fun (l, conn_idx) ->
      F.add_int b l;
      F.add_int b conn_idx)
    kernel.Kernels.Kernel.symmetric_backward;
  let access = kernel.Kernels.Kernel.access in
  F.add_int_array b access.Access.ptr;
  F.add_int_array b access.Access.dat;
  List.iter
    (fun t -> F.add_string b (Fmt.str "%a" Transform.pp t))
    (Plan.transforms plan);
  F.add_string b (fingerprint_strategy strategy);
  F.add_bool b share_symmetric_deps;
  F.value b

(* A warm hit skips every per-transformation inspector and performs
   only what Remap_once's tail would: remap the kernel copy through
   the composed delta, then (unless it is the identity) through the
   composed sigma. All strategies produce exactly this kernel, so the
   replayed result is bit-identical to the cold run's. *)
let replay (entry : Rtrt_plancache.Cache.entry) (kernel : Kernels.Kernel.t) =
  Rtrt_obs.Span.with_span ~name:"inspector.replay" @@ fun span ->
  let t0 = Rtrt_obs.Clock.now_s () in
  let kernel = kernel.Kernels.Kernel.copy () in
  let k = kernel.Kernels.Kernel.apply_iter_perm entry.delta_total in
  let k, remaps =
    if Perm.is_id entry.sigma_total then (k, 0)
    else begin
      Rtrt_obs.Metrics.incr c_data_remaps;
      (k.Kernels.Kernel.apply_data_perm entry.sigma_total, 1)
    end
  in
  let seconds = Rtrt_obs.Clock.now_s () -. t0 in
  Rtrt_obs.Span.set_attr span "inspector_seconds" (Rtrt_obs.Json.Float seconds);
  {
    kernel = k;
    schedule = entry.schedule;
    sigma_total = entry.sigma_total;
    delta_total = entry.delta_total;
    inspector_seconds = seconds;
    n_data_remaps = remaps;
    reordering_fns = entry.reordering_fns;
    shape_summary =
      (* Old disk entries carry no summary; recompute so warm replays
         still feed the tier choice. *)
      (match entry.shape_summary with
      | Some _ as sm -> sm
      | None ->
        Option.map
          (fun s -> Shape.summary (Shape.analyze s))
          entry.schedule);
  }

let run ?cache ?pool ?(strategy = Remap_once) ?(share_symmetric_deps = true)
    plan (kernel : Kernels.Kernel.t) =
  (* Pool-backed substitutions are bit-identical to the serial
     algorithms, so inspector output never depends on the domain
     count. *)
  let pool = match pool with
    | Some p when Rtrt_par.Pool.size p > 1 -> Some p
    | _ -> None
  in
  (match Plan.validate plan with
  | Ok () -> ()
  | Error msg -> invalid "Inspector: %s" msg);
  let inspect () =
  (* Work on a private copy: [apply_*_perm] rebuild only the arrays
     they touch, so the transformed kernel would otherwise alias (and
     its executor mutate) the caller's arrays. *)
  let kernel = kernel.Kernels.Kernel.copy () in
  Rtrt_obs.Span.with_span ~name:"inspector.run"
    ~attrs:
      [
        ("plan", Rtrt_obs.Json.String (Plan.name plan));
        ("strategy", Rtrt_obs.Json.String (strategy_name strategy));
      ]
  @@ fun root_span ->
  let t0 = Rtrt_obs.Clock.now_s () in
  let n_nodes = kernel.Kernels.Kernel.n_nodes in
  let n_inter = kernel.Kernels.Kernel.n_inter in
  (* The composed forward accumulators (and delta's inverse) live in
     scratch backing stores: repeated inspections reuse them, and
     [Perm.compose_into] updates them in place — one pointer update
     per index array per transformation, no allocation. *)
  Irgraph.Scratch.with_buf @@ fun sigma_buf ->
  Irgraph.Scratch.with_buf @@ fun delta_buf ->
  Irgraph.Scratch.with_buf @@ fun delta_inv_buf ->
  Irgraph.Scratch.ensure sigma_buf n_nodes;
  Irgraph.Scratch.ensure delta_buf n_inter;
  Irgraph.Scratch.ensure delta_inv_buf n_inter;
  let sigma_acc = Irgraph.Scratch.data sigma_buf in
  let delta_acc = Irgraph.Scratch.data delta_buf in
  let delta_inv = Irgraph.Scratch.data delta_inv_buf in
  for i = 0 to n_nodes - 1 do
    sigma_acc.(i) <- i
  done;
  for i = 0 to n_inter - 1 do
    delta_acc.(i) <- i;
    delta_inv.(i) <- i
  done;
  let walk =
    {
      kern = kernel;
      base = kernel.Kernels.Kernel.access;
      work_access = Some kernel.Kernels.Kernel.access;
      sigma_acc;
      delta_acc;
      delta_inv;
      sigma_at_tiling = None;
      schedule = None;
      remaps = 0;
      fns = [];
      counters = [];
    }
  in
  (* The fused view of the original access under the composed
     reorderings: current iteration [cur] touches [sigma_acc.(d)] for
     each [d] in base row [delta_inv.(cur)]. *)
  let view = (walk.sigma_acc, walk.delta_inv) in
  let apply (t : Transform.t) =
    Rtrt_obs.Span.with_span ~name:"inspector.transform"
      ~attrs:[ ("kind", Rtrt_obs.Json.String (Transform.name t)) ]
    @@ fun span ->
    match t with
    | Transform.Data_reorder alg ->
      let sigma_new =
        match alg with
        | Transform.Cpack -> (
          match (strategy, pool) with
          | Fused, Some pool -> Rtrt_par.Inspect.cpack ~pool ~view walk.base
          | Fused, None ->
            Cpack.run_view walk.base ~sigma:walk.sigma_acc
              ~delta_inv:walk.delta_inv
          | _, Some pool -> Rtrt_par.Inspect.cpack ~pool (current walk)
          | _, None -> Cpack.run (current walk))
        | Transform.Gpart { part_size } -> (
          match (strategy, pool) with
          | Fused, Some pool ->
            let graph = Rtrt_par.Inspect.to_graph ~pool ~view walk.base in
            Rtrt_par.Inspect.gpart ~pool ~graph walk.base ~part_size
          | Fused, None ->
            Gpart_reorder.run (current walk) ~part_size
          | _, Some pool ->
            let work = current walk in
            let graph = Rtrt_par.Inspect.to_graph ~pool work in
            Rtrt_par.Inspect.gpart ~pool ~graph work ~part_size
          | _, None -> Gpart_reorder.run (current walk) ~part_size)
        | Transform.Multilevel { part_size } -> (
          match (strategy, pool) with
          | Fused, Some pool ->
            let graph = Rtrt_par.Inspect.to_graph ~pool ~view walk.base in
            Rtrt_par.Inspect.multilevel ~pool ~graph walk.base ~part_size
          | _, Some pool ->
            let work = current walk in
            let graph = Rtrt_par.Inspect.to_graph ~pool work in
            Rtrt_par.Inspect.multilevel ~pool ~graph work ~part_size
          | _, None -> Multilevel_reorder.run (current ?pool walk) ~part_size)
        | Transform.Rcm -> Rcm_reorder.run (current ?pool walk)
        | Transform.Tile_pack -> (
          match walk.schedule with
          | None -> invalid "Inspector: tilePack without schedule"
          | Some sched -> (
            let seed_loop = walk.kern.Kernels.Kernel.seed_loop in
            (* tilePack is CPACK over the tiled execution order of the
               seed loop (whose schedule rows data perms never touch,
               so the deferred Fused schedule is already correct
               here). *)
            match (strategy, pool) with
            | Fused, Some pool ->
              let order = Schedule.loop_order sched seed_loop in
              Rtrt_par.Inspect.cpack ~pool ~order ~view walk.base
            | Fused, None ->
              let order = Schedule.loop_order sched seed_loop in
              Cpack.run_view ~order walk.base ~sigma:walk.sigma_acc
                ~delta_inv:walk.delta_inv
            | _, Some pool ->
              let order = Schedule.loop_order sched seed_loop in
              Rtrt_par.Inspect.cpack ~pool ~order (current walk)
            | _, None ->
              Tile_pack.run ~schedule:sched
                ~accesses:[ (seed_loop, current walk) ]
                ~n_data:(Access.n_data (current walk))))
      in
      let base =
        match alg with
        | Transform.Cpack -> "sigma_cp"
        | Transform.Gpart _ -> "sigma_gp"
        | Transform.Multilevel _ -> "sigma_ml"
        | Transform.Rcm -> "sigma_rcm"
        | Transform.Tile_pack -> "sigma_tp"
      in
      let fn = record_fn walk base sigma_new in
      Rtrt_obs.Span.set_attr span "fn" (Rtrt_obs.Json.String fn);
      data_perm walk strategy sigma_new
    | Transform.Iter_reorder alg ->
      let delta_new =
        match alg with
        | Transform.Lexgroup -> (
          match (strategy, pool) with
          | Fused, Some pool -> Rtrt_par.Inspect.lexgroup ~pool ~view walk.base
          | Fused, None ->
            Lexgroup.run_view walk.base ~sigma:walk.sigma_acc
              ~delta_inv:walk.delta_inv
          | _, Some pool -> Rtrt_par.Inspect.lexgroup ~pool (current walk)
          | _, None -> Lexgroup.run (current walk))
        | Transform.Lexsort -> Lexsort.run (current ?pool walk)
        | Transform.Bucket_tile { bucket_size } ->
          (Bucket_tile.run (current ?pool walk) ~bucket_size).Bucket_tile.delta
      in
      let base =
        match alg with
        | Transform.Lexgroup -> "delta_lg"
        | Transform.Lexsort -> "delta_ls"
        | Transform.Bucket_tile _ -> "delta_bt"
      in
      let fn = record_fn walk base delta_new in
      Rtrt_obs.Span.set_attr span "fn" (Rtrt_obs.Json.String fn);
      iter_perm walk strategy delta_new
    | Transform.Sparse_tile { growth; seed } ->
      sparse_tile ?pool walk strategy ~share_symmetric_deps growth seed
  in
  List.iter apply (Plan.transforms plan);
  let sigma_total = Perm.unsafe_of_forward (Array.sub sigma_acc 0 n_nodes) in
  let delta_total = Perm.unsafe_of_forward (Array.sub delta_acc 0 n_inter) in
  (* Fused: the schedule's identity loops have seen none of the data
     reorderings applied after tiling; rename them once through the
     composed post-tiling rename sigma_total . sigma_at_tiling^-1
     (remap_loop re-sorts each row, so one composed rename is
     bit-identical to the per-transformation renames). *)
  (match (strategy, walk.schedule, walk.sigma_at_tiling) with
  | Fused, Some sched, Some sig_tile ->
    let n = Array.length sig_tile in
    let inv_tile = Array.make n 0 in
    for d = 0 to n - 1 do
      inv_tile.(sig_tile.(d)) <- d
    done;
    let rename = Array.init n (fun x -> sigma_acc.(inv_tile.(x))) in
    let is_identity = ref true in
    for x = 0 to n - 1 do
      if rename.(x) <> x then is_identity := false
    done;
    if not !is_identity then begin
      let rperm = Perm.unsafe_of_forward rename in
      let seed = walk.kern.Kernels.Kernel.seed_loop in
      let sched' =
        List.fold_left
          (fun acc l ->
            if l = seed then acc else Schedule.remap_loop acc ~loop:l rperm)
          sched
          (List.init (Schedule.n_loops sched) Fun.id)
      in
      walk.schedule <- Some sched'
    end
  | _ -> ());
  (* Remap_once/Fused: one data remap at the very end (plus the
     index-array adjustment that every strategy pays). *)
  let kern =
    match strategy with
    | Remap_each -> walk.kern
    | Remap_once | Fused ->
      let span_name =
        match strategy with
        | Fused -> "inspector.fused_final_remap"
        | _ -> "inspector.final_remap"
      in
      Rtrt_obs.Span.with_ ~name:span_name @@ fun () ->
      let k = walk.kern.Kernels.Kernel.apply_iter_perm delta_total in
      if Perm.is_id sigma_total then k
      else begin
        walk.remaps <- walk.remaps + 1;
        Rtrt_obs.Metrics.incr c_data_remaps;
        k.Kernels.Kernel.apply_data_perm sigma_total
      end
  in
  let seconds = Rtrt_obs.Clock.now_s () -. t0 in
  Rtrt_obs.Span.set_attr root_span "inspector_seconds"
    (Rtrt_obs.Json.Float seconds);
  Rtrt_obs.Span.set_attr root_span "n_data_remaps"
    (Rtrt_obs.Json.Int walk.remaps);
  {
    kernel = kern;
    schedule = walk.schedule;
    sigma_total;
    delta_total;
    inspector_seconds = seconds;
    n_data_remaps = walk.remaps;
    reordering_fns = List.rev walk.fns;
    shape_summary =
      Option.map (fun s -> Shape.summary (Shape.analyze s)) walk.schedule;
  }
  in
  match cache with
  | None -> inspect ()
  | Some cache -> (
    let key = fingerprint ~strategy ~share_symmetric_deps plan kernel in
    match
      Rtrt_plancache.Cache.find cache ~key
        ~n_data:kernel.Kernels.Kernel.n_nodes
        ~n_iter:kernel.Kernels.Kernel.n_inter
        ~loop_sizes:kernel.Kernels.Kernel.loop_sizes
    with
    | Some entry -> replay entry kernel
    | None ->
      let r = inspect () in
      (* Fused shares Remap_once's fingerprint; if an entry appeared
         under the key meanwhile (e.g. stored by another domain), the
         fused result must agree with it — verify before (re)storing
         rather than silently shadowing. *)
      (match strategy with
      | Fused -> (
        match Rtrt_plancache.Cache.peek cache ~key with
        | Some entry ->
          if
            not
              (Perm.equal entry.Rtrt_plancache.Cache.sigma_total r.sigma_total
              && Perm.equal entry.Rtrt_plancache.Cache.delta_total
                   r.delta_total)
          then invalid "Inspector: fused result disagrees with cached entry"
        | None -> ())
      | _ -> ());
      Rtrt_plancache.Cache.store cache ~key
        {
          Rtrt_plancache.Cache.sigma_total = r.sigma_total;
          delta_total = r.delta_total;
          schedule = r.schedule;
          shape_summary = r.shape_summary;
          reordering_fns = r.reordering_fns;
          n_data_remaps = r.n_data_remaps;
          cold_inspector_seconds = r.inspector_seconds;
        };
      r)
