(* The composed run-time inspector (Section 5 / Figures 11 and 15).

   Given a plan and a kernel, run each transformation's inspector
   against the data mappings and dependences *as modified by the
   previously planned inspectors*, producing the composed reordering
   functions, the transformed kernel for the executor, and (when the
   plan sparse-tiles) the tile schedule.

   Two remap strategies realize the Section 6 overhead trade-off:
   - [Remap_each] (Figure 15): every transformation immediately
     remaps the kernel's data and index arrays, so later inspectors
     traverse plain arrays;
   - [Remap_once] (Figure 11): inspectors traverse a working copy of
     the index arrays (adjusted after every transformation, which the
     paper found cheapest) while the data arrays are remapped a single
     time, at the very end, through the composed sigma.

   Both strategies produce identical results; only the inspector cost
   differs (Figure 16 measures the difference). *)

open Reorder

type strategy = Remap_each | Remap_once

type result = {
  kernel : Kernels.Kernel.t; (* transformed kernel for the executor *)
  schedule : Schedule.t option;
  sigma_total : Perm.t; (* composed data reordering *)
  delta_total : Perm.t; (* composed interaction-loop reordering *)
  inspector_seconds : float;
  n_data_remaps : int; (* full data-array remap passes performed *)
  (* Each generated reordering function, named exactly as the symbolic
     layer names it (sigma_cp, delta_lg, sigma_cp2, ...), so the
     compile-time formulas can be evaluated against the run-time
     output. *)
  reordering_fns : (string * Perm.t) list;
}

let invalid fmt = Fmt.kstr invalid_arg fmt

let c_data_remaps = Rtrt_obs.Metrics.counter "inspector.data_remaps"
let c_perms_composed = Rtrt_obs.Metrics.counter "inspector.permutations_composed"

(* Mutable walk state shared by both strategies. *)
type walk = {
  mutable kern : Kernels.Kernel.t; (* original (Remap_once) or current *)
  mutable work_access : Access.t;  (* access under all reorderings so far *)
  mutable sigma : Perm.t;          (* composed data reordering so far *)
  mutable delta : Perm.t;          (* composed interaction reordering *)
  mutable schedule : Schedule.t option;
  mutable remaps : int;
  mutable fns : (string * Perm.t) list; (* reverse order *)
  mutable counters : (string * int) list;
}

(* Fresh reordering-function names matching Symbolic.fresh_fn. *)
let fresh_fn walk base =
  let n =
    match List.assoc_opt base walk.counters with Some n -> n | None -> 0
  in
  walk.counters <- (base, n + 1) :: List.remove_assoc base walk.counters;
  if n = 0 then base else Fmt.str "%s%d" base (n + 1)

(* Returns the generated function's name so the enclosing span can
   record it. *)
let record_fn walk base perm =
  let name = fresh_fn walk base in
  walk.fns <- (name, perm) :: walk.fns;
  name

let data_perm walk strategy sigma_new =
  Rtrt_obs.Metrics.incr c_perms_composed;
  walk.work_access <- Access.map_data sigma_new walk.work_access;
  walk.sigma <- Perm.compose sigma_new walk.sigma;
  (match walk.schedule with
  | None -> ()
  | Some sched ->
    (* Identity-mapped loops are renamed by the data reordering
       (T_{I3->I4}); the interaction loop's ids are untouched. *)
    let seed = walk.kern.Kernels.Kernel.seed_loop in
    let sched' =
      List.fold_left
        (fun acc l ->
          if l = seed then acc else Schedule.remap_loop acc ~loop:l sigma_new)
        sched
        (List.init (Schedule.n_loops sched) Fun.id)
    in
    walk.schedule <- Some sched');
  match strategy with
  | Remap_each ->
    walk.kern <- walk.kern.Kernels.Kernel.apply_data_perm sigma_new;
    walk.remaps <- walk.remaps + 1;
    Rtrt_obs.Metrics.incr c_data_remaps
  | Remap_once -> ()

let iter_perm walk strategy delta_new =
  Rtrt_obs.Metrics.incr c_perms_composed;
  walk.work_access <- Access.reorder_iters delta_new walk.work_access;
  walk.delta <- Perm.compose delta_new walk.delta;
  match strategy with
  | Remap_each ->
    walk.kern <- walk.kern.Kernels.Kernel.apply_iter_perm delta_new
  | Remap_once -> ()

let seed_tiles_of walk (seed : Transform.seed_partition) ~seed_loop =
  let kern = walk.kern in
  let n_seed = kern.Kernels.Kernel.loop_sizes.(seed_loop) in
  match seed with
  | Transform.Seed_block { part_size } ->
    Sparse_tile.tile_fn_of_partition
      (Irgraph.Partition.block ~n:n_seed ~part_size)
  | Transform.Seed_gpart { part_size } ->
    (* Partition the data-affinity graph and key each seed-loop
       iteration by the partition of its first touch (for identity
       loops that *is* its datum). *)
    let g = Access.to_graph walk.work_access in
    let p = Irgraph.Partition.gpart g ~part_size in
    let assign = Irgraph.Partition.assignment p in
    let tile_of =
      if seed_loop = kern.Kernels.Kernel.seed_loop then
        Array.init n_seed (fun it ->
            assign.(Access.first_touch walk.work_access it))
      else Array.init n_seed (fun v -> assign.(v))
    in
    { Sparse_tile.n_tiles = Irgraph.Partition.n_parts p; tile_of }

let sparse_tile walk ~share_symmetric_deps growth seed =
  let kern = walk.kern in
  if walk.schedule <> None then invalid "Inspector: already sparse tiled";
  let chain = kern.Kernels.Kernel.chain_of_access walk.work_access in
  let tiles =
    match (growth : Transform.tile_growth) with
    | Transform.Full ->
      let seed_loop = kern.Kernels.Kernel.seed_loop in
      let seed_tiles = seed_tiles_of walk seed ~seed_loop in
      let shared_succ =
        if share_symmetric_deps then
          List.map
            (fun (l, conn_idx) -> (l, chain.Sparse_tile.conn.(conn_idx)))
            kern.Kernels.Kernel.symmetric_backward
        else []
      in
      Sparse_tile.full ~shared_succ ~chain ~seed:seed_loop ~seed_tiles ()
    | Transform.Cache_block ->
      let seed_tiles = seed_tiles_of walk seed ~seed_loop:0 in
      Sparse_tile.cache_block ~chain ~seed_tiles
  in
  (match Sparse_tile.check_legality ~chain ~tiles with
  | [] -> ()
  | (l, a, b) :: _ ->
    invalid "Inspector: illegal tile function (loop pair %d, %d -> %d)" l a b);
  walk.schedule <- Some (Schedule.of_tile_fns tiles)

let strategy_name = function
  | Remap_each -> "remap_each"
  | Remap_once -> "remap_once"

(* Everything that determines the inspection outcome goes into the
   cache key: the kernel's shape and access pattern (the run-time
   data), the plan's transformations with their parameters (via
   [Transform.pp], which prints every parameter), the remap strategy
   (it changes [n_data_remaps]), and the symmetric-dependence flag (it
   changes tile growth). The plan *name* is deliberately excluded —
   two differently-named plans with the same transforms inspect
   identically. *)
let fingerprint ?(strategy = Remap_once) ?(share_symmetric_deps = true) plan
    (kernel : Kernels.Kernel.t) =
  let module F = Rtrt_plancache.Fingerprint in
  let b = F.create () in
  F.add_string b kernel.Kernels.Kernel.name;
  F.add_int b kernel.Kernels.Kernel.n_nodes;
  F.add_int b kernel.Kernels.Kernel.n_inter;
  F.add_int_array b kernel.Kernels.Kernel.loop_sizes;
  F.add_int b kernel.Kernels.Kernel.seed_loop;
  List.iter
    (fun (l, conn_idx) ->
      F.add_int b l;
      F.add_int b conn_idx)
    kernel.Kernels.Kernel.symmetric_backward;
  let access = kernel.Kernels.Kernel.access in
  F.add_int_array b access.Access.ptr;
  F.add_int_array b access.Access.dat;
  List.iter
    (fun t -> F.add_string b (Fmt.str "%a" Transform.pp t))
    (Plan.transforms plan);
  F.add_string b (strategy_name strategy);
  F.add_bool b share_symmetric_deps;
  F.value b

(* A warm hit skips every per-transformation inspector and performs
   only what Remap_once's tail would: remap the kernel copy through
   the composed delta, then (unless it is the identity) through the
   composed sigma. Both strategies produce exactly this kernel, so the
   replayed result is bit-identical to the cold run's. *)
let replay (entry : Rtrt_plancache.Cache.entry) (kernel : Kernels.Kernel.t) =
  Rtrt_obs.Span.with_span ~name:"inspector.replay" @@ fun span ->
  let t0 = Unix.gettimeofday () in
  let kernel = kernel.Kernels.Kernel.copy () in
  let k = kernel.Kernels.Kernel.apply_iter_perm entry.delta_total in
  let k, remaps =
    if Perm.is_id entry.sigma_total then (k, 0)
    else begin
      Rtrt_obs.Metrics.incr c_data_remaps;
      (k.Kernels.Kernel.apply_data_perm entry.sigma_total, 1)
    end
  in
  let seconds = Unix.gettimeofday () -. t0 in
  Rtrt_obs.Span.set_attr span "inspector_seconds" (Rtrt_obs.Json.Float seconds);
  {
    kernel = k;
    schedule = entry.schedule;
    sigma_total = entry.sigma_total;
    delta_total = entry.delta_total;
    inspector_seconds = seconds;
    n_data_remaps = remaps;
    reordering_fns = entry.reordering_fns;
  }

let run ?cache ?pool ?(strategy = Remap_once) ?(share_symmetric_deps = true)
    plan (kernel : Kernels.Kernel.t) =
  (* Pool-backed substitutions are bit-identical to the serial
     algorithms, so inspector output never depends on the domain
     count. *)
  let pool = match pool with
    | Some p when Rtrt_par.Pool.size p > 1 -> Some p
    | _ -> None
  in
  (match Plan.validate plan with
  | Ok () -> ()
  | Error msg -> invalid "Inspector: %s" msg);
  let inspect () =
  (* Work on a private copy: [apply_*_perm] rebuild only the arrays
     they touch, so the transformed kernel would otherwise alias (and
     its executor mutate) the caller's arrays. *)
  let kernel = kernel.Kernels.Kernel.copy () in
  Rtrt_obs.Span.with_span ~name:"inspector.run"
    ~attrs:
      [
        ("plan", Rtrt_obs.Json.String (Plan.name plan));
        ("strategy", Rtrt_obs.Json.String (strategy_name strategy));
      ]
  @@ fun root_span ->
  let t0 = Unix.gettimeofday () in
  let walk =
    {
      kern = kernel;
      work_access = kernel.Kernels.Kernel.access;
      sigma = Perm.id kernel.Kernels.Kernel.n_nodes;
      delta = Perm.id kernel.Kernels.Kernel.n_inter;
      schedule = None;
      remaps = 0;
      fns = [];
      counters = [];
    }
  in
  let apply (t : Transform.t) =
    Rtrt_obs.Span.with_span ~name:"inspector.transform"
      ~attrs:[ ("kind", Rtrt_obs.Json.String (Transform.name t)) ]
    @@ fun span ->
    match t with
    | Transform.Data_reorder alg ->
      let sigma_new =
        match alg with
        | Transform.Cpack -> Cpack.run walk.work_access
        | Transform.Gpart { part_size } -> (
          match pool with
          | Some pool -> Rtrt_par.Inspect.gpart ~pool walk.work_access ~part_size
          | None -> Gpart_reorder.run walk.work_access ~part_size)
        | Transform.Multilevel { part_size } ->
          Multilevel_reorder.run walk.work_access ~part_size
        | Transform.Rcm -> Rcm_reorder.run walk.work_access
        | Transform.Tile_pack -> (
          match walk.schedule with
          | None -> invalid "Inspector: tilePack without schedule"
          | Some sched ->
            Tile_pack.run ~schedule:sched
              ~accesses:
                [ (walk.kern.Kernels.Kernel.seed_loop, walk.work_access) ]
              ~n_data:(Access.n_data walk.work_access))
      in
      let base =
        match alg with
        | Transform.Cpack -> "sigma_cp"
        | Transform.Gpart _ -> "sigma_gp"
        | Transform.Multilevel _ -> "sigma_ml"
        | Transform.Rcm -> "sigma_rcm"
        | Transform.Tile_pack -> "sigma_tp"
      in
      let fn = record_fn walk base sigma_new in
      Rtrt_obs.Span.set_attr span "fn" (Rtrt_obs.Json.String fn);
      data_perm walk strategy sigma_new
    | Transform.Iter_reorder alg ->
      let delta_new =
        match alg with
        | Transform.Lexgroup -> (
          match pool with
          | Some pool -> Rtrt_par.Inspect.lexgroup ~pool walk.work_access
          | None -> Lexgroup.run walk.work_access)
        | Transform.Lexsort -> Lexsort.run walk.work_access
        | Transform.Bucket_tile { bucket_size } ->
          (Bucket_tile.run walk.work_access ~bucket_size).Bucket_tile.delta
      in
      let base =
        match alg with
        | Transform.Lexgroup -> "delta_lg"
        | Transform.Lexsort -> "delta_ls"
        | Transform.Bucket_tile _ -> "delta_bt"
      in
      let fn = record_fn walk base delta_new in
      Rtrt_obs.Span.set_attr span "fn" (Rtrt_obs.Json.String fn);
      iter_perm walk strategy delta_new
    | Transform.Sparse_tile { growth; seed } ->
      sparse_tile walk ~share_symmetric_deps growth seed
  in
  List.iter apply (Plan.transforms plan);
  (* Remap_once: one data remap at the very end (plus the index-array
     adjustment that both strategies pay). *)
  let kern =
    match strategy with
    | Remap_each -> walk.kern
    | Remap_once ->
      Rtrt_obs.Span.with_ ~name:"inspector.final_remap" @@ fun () ->
      let k = walk.kern.Kernels.Kernel.apply_iter_perm walk.delta in
      if Perm.is_id walk.sigma then k
      else begin
        walk.remaps <- walk.remaps + 1;
        Rtrt_obs.Metrics.incr c_data_remaps;
        k.Kernels.Kernel.apply_data_perm walk.sigma
      end
  in
  let seconds = Unix.gettimeofday () -. t0 in
  Rtrt_obs.Span.set_attr root_span "inspector_seconds"
    (Rtrt_obs.Json.Float seconds);
  Rtrt_obs.Span.set_attr root_span "n_data_remaps"
    (Rtrt_obs.Json.Int walk.remaps);
  {
    kernel = kern;
    schedule = walk.schedule;
    sigma_total = walk.sigma;
    delta_total = walk.delta;
    inspector_seconds = seconds;
    n_data_remaps = walk.remaps;
    reordering_fns = List.rev walk.fns;
  }
  in
  match cache with
  | None -> inspect ()
  | Some cache -> (
    let key = fingerprint ~strategy ~share_symmetric_deps plan kernel in
    match
      Rtrt_plancache.Cache.find cache ~key
        ~n_data:kernel.Kernels.Kernel.n_nodes
        ~n_iter:kernel.Kernels.Kernel.n_inter
        ~loop_sizes:kernel.Kernels.Kernel.loop_sizes
    with
    | Some entry -> replay entry kernel
    | None ->
      let r = inspect () in
      Rtrt_plancache.Cache.store cache ~key
        {
          Rtrt_plancache.Cache.sigma_total = r.sigma_total;
          delta_total = r.delta_total;
          schedule = r.schedule;
          reordering_fns = r.reordering_fns;
          n_data_remaps = r.n_data_remaps;
          cold_inspector_seconds = r.inspector_seconds;
        };
      r)
