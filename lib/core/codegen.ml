(* Pseudo-code generation for composed inspectors and executors — the
   paper's Figures 10-15, derived mechanically from the symbolic state.

   The paper's future work is the automatic generation of specialized
   inspectors; the key enabler it identifies is that the compile-time
   data mappings carry exactly the index expressions a specialized
   inspector must traverse (e.g. Figure 12's
   [sigma_cp[left[delta_lg_inv[j1]]]]). We realize that step: terms of
   the current data mapping render directly as subscript chains, each
   transformation renders as a specialized inspector procedure, and
   the final executor renders from the transformed iteration space
   (plain Figure 13 form, or tiled Figure 14 form with sched(t,l)
   loops). The output is C-like pseudo-code for documentation and
   inspection, not compiled. *)

open Presburger

let buf_add = Buffer.add_string

(* Render a term as a subscript expression: UFS application f(e)
   becomes f[e]. *)
let rec subscript t =
  match Term.as_var t with
  | Some v -> v
  | None -> (
    match Term.as_ufs t with
    | Some (f, [ arg ]) -> Fmt.str "%s[%s]" f (subscript arg)
    | Some (f, args) ->
      Fmt.str "%s[%s]" f (String.concat ", " (List.map subscript args))
    | None -> (
      match Term.to_const t with
      | Some c -> string_of_int c
      | None -> Term.to_string t))

(* The subscript expressions a loop's body uses, read off the data
   mapping: the out-tuple terms of the disjuncts whose position
   constraint matches [pos], with the iteration variable renamed to
   [iv]. The unified space is [s, pos, iv, q] before sparse tiling and
   [s, t, pos, iv, q] after, so the slots count from the end. *)
let mapping_subscripts ~pos ~iv (m : Rel.t) =
  let in_vars = Rel.in_vars m in
  let arity = List.length in_vars in
  let pos_var = List.nth in_vars (arity - 3) in
  let matches_pos (d : Rel.disjunct) =
    List.exists
      (fun c ->
        match c with
        | Constr.Eq t -> (
          (* position pin: pos_var - pos = 0 *)
          match
            (Term.vars t, Term.to_const (Term.subst pos_var (Term.const pos) t))
          with
          | [ v ], Some 0 when String.equal v pos_var -> true
          | _ -> false)
        | Constr.Geq _ -> false)
      d.Rel.constrs
  in
  let iter_var = List.nth in_vars (arity - 2) in
  List.filter_map
    (fun (d : Rel.disjunct) ->
      if matches_pos d then
        match d.Rel.out_tuple with
        | [ t ] -> Some (subscript (Term.subst iter_var (Term.var iv) t))
        | _ -> None
      else None)
    (Rel.disjuncts m)

(* Specialized CPACK inspector for the current data mapping: the
   Figure 10/12 shape, with the subscript chains of the mapping. *)
let cpack_inspector ~instance ~(program : Symbolic.program) (m : Rel.t) =
  let b = Buffer.create 256 in
  let loop = Symbolic.indexed_loop program in
  let subs = mapping_subscripts ~pos:loop.Symbolic.position ~iv:"j" m in
  buf_add b (Fmt.str "CPACK_M_to_%s(%s) {\n" instance
               (String.concat ", " (List.sort_uniq compare
                                      (List.concat_map (fun s ->
                                           String.split_on_char '[' s
                                           |> List.filter (fun x -> x <> "" && x <> "j")
                                           |> List.map (String.map (function ']' -> ' ' | c -> c))
                                           |> List.map String.trim) subs))));
  buf_add b "  // initialize alreadyOrdered bit vector to all false\n";
  buf_add b "  count = 0\n";
  buf_add b (Fmt.str "  do j = 1 to %s\n" loop.Symbolic.size);
  List.iteri
    (fun k sub ->
      buf_add b (Fmt.str "    mem_loc%d = %s\n" (k + 1) sub))
    subs;
  List.iteri
    (fun k _ ->
      buf_add b (Fmt.str "    if not alreadyOrdered(mem_loc%d)\n" (k + 1));
      buf_add b (Fmt.str "      %s_inv[count] = mem_loc%d\n" instance (k + 1));
      buf_add b (Fmt.str "      alreadyOrdered(mem_loc%d) = true\n" (k + 1));
      buf_add b "      count = count + 1\n";
      buf_add b "    endif\n")
    subs;
  buf_add b "  enddo\n";
  buf_add b "  do i = 1 to n_data   // pack untouched locations\n";
  buf_add b "    if not alreadyOrdered(i)\n";
  buf_add b (Fmt.str "      %s_inv[count] = i\n" instance);
  buf_add b "      count = count + 1\n";
  buf_add b "    endif\n";
  buf_add b "  enddo\n";
  buf_add b (Fmt.str "  return %s_inv\n}\n" instance);
  Buffer.contents b

(* Specialized lexGroup inspector: group by the first subscript chain
   of the current mapping. *)
let lexgroup_inspector ~instance ~(program : Symbolic.program) (m : Rel.t) =
  let b = Buffer.create 256 in
  let loop = Symbolic.indexed_loop program in
  let subs = mapping_subscripts ~pos:loop.Symbolic.position ~iv:"j" m in
  let first = match subs with s :: _ -> s | [] -> "j" in
  buf_add b (Fmt.str "LEXGROUP_to_%s() {\n" instance);
  buf_add b (Fmt.str "  // stable counting sort of j = 1..%s keyed on\n"
               loop.Symbolic.size);
  buf_add b (Fmt.str "  //   key(j) = %s\n" first);
  buf_add b (Fmt.str "  return %s\n}\n" instance);
  Buffer.contents b

(* The composed inspector driver (Figure 11 shape): one call per
   transformation, then a single remap of data and index arrays. *)
let composed_inspector (st : Symbolic.state) =
  let b = Buffer.create 1024 in
  buf_add b "composed_inspector() {\n";
  List.iter
    (fun (s : Symbolic.step) ->
      buf_add b
        (Fmt.str "  %s = %s_inspector(...)   // %s\n" s.Symbolic.fn_name
           (Transform.name s.Symbolic.transform)
           (Rel.to_string s.Symbolic.relation)))
    (Symbolic.steps st);
  buf_add b "  // remap and update the data and index arrays once,\n";
  buf_add b "  // after all reordering functions are generated (Section 6)\n";
  buf_add b (Fmt.str "  remap_data(%s)\n"
               (Rel.to_string (Symbolic.r_total st)));
  buf_add b "}\n";
  Buffer.contents b

(* The executor: Figure 13 (plain) or Figure 14 (tiled). *)
let executor (st : Symbolic.state) ~(program : Symbolic.program) =
  let b = Buffer.create 1024 in
  let tiled = Symbolic.is_tiled st in
  let m = Symbolic.data_map st in
  buf_add b "do s = 1 to num_steps\n";
  let emit_loop indent (l : Symbolic.loop_desc) =
    let iv = Fmt.str "%s%d" l.Symbolic.index (List.length (Symbolic.steps st)) in
    if tiled then
      buf_add b (Fmt.str "%sdo %s in sched(t, %d)\n" indent iv
                   l.Symbolic.position)
    else
      buf_add b (Fmt.str "%sdo %s = 1 to %s\n" indent iv l.Symbolic.size);
    let subs = mapping_subscripts ~pos:l.Symbolic.position ~iv m in
    let subs = if subs = [] then [ iv ] else subs in
    (* After the final remap the composed chain collapses into the
       adjusted index array (Figure 13 uses left2[j2], not the chain);
       keep the chain as a comment. The index array is the chain's
       only non-bijection — the program description names them. *)
    let index_array_names =
      List.concat_map
        (fun (lp : Symbolic.loop_desc) ->
          List.filter_map
            (function Symbolic.Indexed f -> Some f | Symbolic.Direct -> None)
            lp.Symbolic.accesses)
        program.Symbolic.loops
    in
    let collapse sub =
      let contains name =
        let re = Str.regexp_string (name ^ "[") in
        try ignore (Str.search_forward re sub 0); true with Not_found -> false
      in
      match List.find_opt contains index_array_names with
      | Some name -> Fmt.str "%s'[%s]  // = %s" name iv sub
      | None -> sub
    in
    List.iter
      (fun sub -> buf_add b (Fmt.str "%s  touch %s\n" indent (collapse sub)))
      subs;
    buf_add b (Fmt.str "%senddo\n" indent)
  in
  if tiled then begin
    buf_add b "  do t = 1 to num_tiles\n";
    List.iter (emit_loop "    ") program.Symbolic.loops;
    buf_add b "  enddo\n"
  end
  else List.iter (emit_loop "  ") program.Symbolic.loops;
  buf_add b "enddo\n";
  Buffer.contents b

(* Full report: specialized inspectors for every CPACK/lexGroup step,
   the composed driver, and the executor. *)
let full_report (st : Symbolic.state) ~(program : Symbolic.program) =
  let b = Buffer.create 4096 in
  let rec walk prior = function
    | [] -> ()
    | (s : Symbolic.step) :: rest ->
      (match s.Symbolic.transform with
      | Transform.Data_reorder (Transform.Cpack | Transform.Tile_pack) ->
        buf_add b (cpack_inspector ~instance:s.Symbolic.fn_name ~program prior);
        buf_add b "\n"
      | Transform.Iter_reorder Transform.Lexgroup ->
        buf_add b
          (lexgroup_inspector ~instance:s.Symbolic.fn_name ~program prior);
        buf_add b "\n"
      | _ -> ());
      walk s.Symbolic.data_map rest
  in
  walk (Symbolic.initial_data_map program) (Symbolic.steps st);
  buf_add b (composed_inspector st);
  buf_add b "\n";
  buf_add b (executor st ~program);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Tier B: real OCaml emission for a frozen schedule (ROADMAP item 2).

   Everything above renders pseudo-code for inspection; this section
   emits a compilable OCaml module specialized to one (kernel,
   schedule) pair: row bounds constant-folded into literals, each
   row's runs of consecutive iterations unrolled into [for lo to hi]
   range loops, loop bodies inlined at every site, no schedule
   indirection at all for run-shaped rows. The module depends only on
   Stdlib and hands its executor to the host through
   [Callback.register] (see Compose.Specialize for the compile /
   Dynlink / cache pipeline and the array-order convention).

   Emitted executor type:  int array array -> float array array ->
   int -> unit, where the int arrays are the kernel's index arrays
   with the schedule's [items] appended last, and the float arrays are
   the kernel's data arrays in [Kernels.Kernel.exec_arrays] order. *)

(* Float constants are emitted as hex literals so the compiled
   executor computes with bit-for-bit the constants the interpreted
   executor uses. *)
let hex_float f = Printf.sprintf "(%h)" f

(* Per-kernel emission tables: int-array names (items is appended by
   the host), float-array names, chain length, and the loop body for
   each chain class with [v] the iteration variable. Bodies mirror the
   kernels' unsafe loop bodies statement for statement. *)
let spec_tables :
    (string * (string list * string list * int * (int -> string list))) list =
  let dt = hex_float 0.0001 in
  let relax = hex_float 0.001 in
  let damping = hex_float 1.0 in
  let one = hex_float 1.0 in
  let two = hex_float 2.0 in
  let g = Printf.sprintf in
  let moldyn_body = function
    | 0 ->
      [
        g "let i = v in";
        g "Array.unsafe_set x i (Array.unsafe_get x i +. (%s *. (Array.unsafe_get vx i +. Array.unsafe_get fx i)));" dt;
        g "Array.unsafe_set y i (Array.unsafe_get y i +. (%s *. (Array.unsafe_get vy i +. Array.unsafe_get fy i)));" dt;
        g "Array.unsafe_set z i (Array.unsafe_get z i +. (%s *. (Array.unsafe_get vz i +. Array.unsafe_get fz i)));" dt;
      ]
    | 1 ->
      [
        g "let l = Array.unsafe_get left v and r = Array.unsafe_get right v in";
        g "let dx = Array.unsafe_get x l -. Array.unsafe_get x r in";
        g "let dy = Array.unsafe_get y l -. Array.unsafe_get y r in";
        g "let dz = Array.unsafe_get z l -. Array.unsafe_get z r in";
        g "let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. %s in" one;
        g "let gg = %s /. r2 in" one;
        g "Array.unsafe_set fx l (Array.unsafe_get fx l +. (gg *. dx));";
        g "Array.unsafe_set fx r (Array.unsafe_get fx r -. (gg *. dx));";
        g "Array.unsafe_set fy l (Array.unsafe_get fy l +. (gg *. dy));";
        g "Array.unsafe_set fy r (Array.unsafe_get fy r -. (gg *. dy));";
        g "Array.unsafe_set fz l (Array.unsafe_get fz l +. (gg *. dz));";
        g "Array.unsafe_set fz r (Array.unsafe_get fz r -. (gg *. dz));";
      ]
    | _ ->
      [
        g "let k = v in";
        g "Array.unsafe_set vx k (Array.unsafe_get vx k +. (%s *. Array.unsafe_get fx k));" dt;
        g "Array.unsafe_set vy k (Array.unsafe_get vy k +. (%s *. Array.unsafe_get fy k));" dt;
        g "Array.unsafe_set vz k (Array.unsafe_get vz k +. (%s *. Array.unsafe_get fz k));" dt;
      ]
  in
  let nbf_body = function
    | 0 ->
      [
        g "let i = v in";
        g "Array.unsafe_set x i (Array.unsafe_get x i +. (%s *. Array.unsafe_get fx i));" dt;
        g "Array.unsafe_set y i (Array.unsafe_get y i +. (%s *. Array.unsafe_get fy i));" dt;
        g "Array.unsafe_set z i (Array.unsafe_get z i +. (%s *. Array.unsafe_get fz i));" dt;
      ]
    | _ ->
      [
        g "let l = Array.unsafe_get left v and r = Array.unsafe_get right v in";
        g "let dx = Array.unsafe_get x l -. Array.unsafe_get x r in";
        g "let dy = Array.unsafe_get y l -. Array.unsafe_get y r in";
        g "let dz = Array.unsafe_get z l -. Array.unsafe_get z r in";
        g "let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. %s in" one;
        g "let ir2 = %s /. r2 in" one;
        g "let ir6 = ir2 *. ir2 *. ir2 in";
        g "let gg = ((%s *. ir6 *. ir6) -. ir6) *. ir2 in" two;
        g "Array.unsafe_set fx l (Array.unsafe_get fx l +. (gg *. dx));";
        g "Array.unsafe_set fx r (Array.unsafe_get fx r -. (gg *. dx));";
        g "Array.unsafe_set fy l (Array.unsafe_get fy l +. (gg *. dy));";
        g "Array.unsafe_set fy r (Array.unsafe_get fy r -. (gg *. dy));";
        g "Array.unsafe_set fz l (Array.unsafe_get fz l +. (gg *. dz));";
        g "Array.unsafe_set fz r (Array.unsafe_get fz r -. (gg *. dz));";
      ]
  in
  let irreg_body = function
    | 0 ->
      [
        g "let l = Array.unsafe_get left v and r = Array.unsafe_get right v in";
        g "let d = Array.unsafe_get w v *. (Array.unsafe_get x l -. Array.unsafe_get x r) in";
        g "Array.unsafe_set y l (Array.unsafe_get y l +. d);";
        g "Array.unsafe_set y r (Array.unsafe_get y r -. d);";
      ]
    | _ ->
      [
        g "let k = v in";
        g "Array.unsafe_set x k (Array.unsafe_get x k +. (%s *. Array.unsafe_get y k));" relax;
      ]
  in
  let gs_body _ =
    [
      g "let acc = ref (Array.unsafe_get f v) in";
      g "let alo = Array.unsafe_get ptr v and ahi = Array.unsafe_get ptr (v + 1) in";
      g "for e = alo to ahi - 1 do acc := !acc +. Array.unsafe_get u (Array.unsafe_get adj e) done;";
      g "Array.unsafe_set u v (!acc /. (float_of_int (ahi - alo) +. %s));" damping;
    ]
  in
  [
    ( "moldyn",
      ( [ "left"; "right" ],
        [ "x"; "y"; "z"; "vx"; "vy"; "vz"; "fx"; "fy"; "fz" ],
        3,
        moldyn_body ) );
    ("nbf", ([ "left"; "right" ], [ "x"; "y"; "z"; "fx"; "fy"; "fz" ], 2, nbf_body));
    ("irreg", ([ "left"; "right" ], [ "w"; "x"; "y" ], 2, irreg_body));
    ("gs", ([ "ptr"; "adj" ], [ "u"; "f" ], 1, gs_body));
  ]

(* Rows whose run count is at most this are unrolled into literal
   range loops; denser rows fall back to one items-driven loop with
   constant-folded row bounds (still no row_ptr loads). *)
let inline_runs_max = 8

(* Big enough for a few thousand rows with the heavier kernel bodies
   (a bench-scale moldyn schedule emits ~600 B/row); schedules past
   this fall back to Tier A rather than paying a multi-minute
   compile. *)
let default_max_source_bytes = 1 lsl 21 (* 2 MiB *)

let specialized_source ?(max_bytes = default_max_source_bytes) ~kernel ~key
    (sched : Reorder.Schedule.t) (shape : Reorder.Shape.t) =
  match List.assoc_opt kernel spec_tables with
  | None -> None
  | Some _ when not (Reorder.Shape.for_schedule shape sched) -> None
  | Some (int_names, float_names, chain, body) ->
    let b = Buffer.create 16384 in
    let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    add
      "(* Specialized executor for kernel %s, schedule key %s.\n\
      \   Emitted by Compose.Codegen.specialized_source; do not edit. *)\n"
      kernel key;
    add "let exec (ia : int array array) (fa : float array array) (steps : int) =\n";
    List.iteri
      (fun i n -> add "  let %s = Array.unsafe_get ia %d in\n" n i)
      int_names;
    add "  let items = Array.unsafe_get ia %d in\n" (List.length int_names);
    add "  ignore (items : int array);\n";
    List.iteri
      (fun i n -> add "  let %s = Array.unsafe_get fa %d in\n" n i)
      float_names;
    add "  for _s = 1 to steps do\n";
    let row_ptr = Reorder.Schedule.row_ptr sched in
    let n_tiles = Reorder.Schedule.n_tiles sched in
    let n_loops = Reorder.Schedule.n_loops sched in
    let rq = Reorder.Shape.run_ptr shape in
    let rlo = Reorder.Shape.run_lo shape in
    let rln = Reorder.Shape.run_len shape in
    let over_budget = ref false in
    (try
       for t = 0 to n_tiles - 1 do
         for c = 0 to n_loops - 1 do
           let r = (t * n_loops) + c in
           let body_lines = body (c mod chain) in
           let emit_body indent =
             List.iter (fun l -> add "%s  %s\n" indent l) body_lines
           in
           let klo = rq.(r) and khi = rq.(r + 1) in
           if khi > klo then begin
             if khi - klo <= inline_runs_max then
               for k = klo to khi - 1 do
                 let lo = rlo.(k) in
                 let hi = lo + rln.(k) - 1 in
                 if lo = hi then begin
                   add "    (let v = %d in\n" lo;
                   emit_body "    ";
                   add "    );\n"
                 end
                 else begin
                   add "    for v = %d to %d do\n" lo hi;
                   emit_body "    ";
                   add "    done;\n"
                 end
               done
             else begin
               add "    for idx = %d to %d do\n" row_ptr.(r) (row_ptr.(r + 1) - 1);
               add "      let v = Array.unsafe_get items idx in\n";
               emit_body "    ";
               add "    done;\n"
             end;
             if Buffer.length b > max_bytes then begin
               over_budget := true;
               raise Exit
             end
           end
         done
       done
     with Exit -> ());
    if !over_budget then None
    else begin
      add "    ()\n";
      add "  done\n";
      add "\nlet () = Callback.register %S exec\n" ("rtrt.spec." ^ key);
      Some (Buffer.contents b)
    end
