/* Look up a value registered by a dynlinked plugin via
 * Callback.register. The Callback module's OCaml-side table is not
 * exposed for reading, but caml_named_value reaches the same registry
 * from C; this stub wraps it as [string -> Obj.t option] so the host
 * can retrieve the executor a specialized module registered under
 * "rtrt.spec.<key>". */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/callback.h>

CAMLprim value rtrt_specialize_get_named(value name)
{
  CAMLparam1(name);
  CAMLlocal1(some);
  const value *registered = caml_named_value(String_val(name));
  if (registered == NULL)
    CAMLreturn(Val_int(0)); /* None */
  some = caml_alloc_small(1, 0);
  Field(some, 0) = *registered;
  CAMLreturn(some);
}
