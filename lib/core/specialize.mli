(** Staged executor specialization over a frozen schedule.

    Three execution strategies for the same flat-CSR schedule, all
    bitwise identical:

    - [Interp]: the kernels' interpreted [run_tiled] walk;
    - [Shaped] (Tier A, on whenever {!Reorder.Shape.profitable}): the
      run-length-index streaming executors, selected at plan time;
    - [Codegen] (Tier B, opt-in via [--specialize] or
      [RTRT_SPECIALIZE=1]): a straight-line OCaml module emitted by
      {!Codegen.specialized_source} for this exact (kernel, schedule)
      pair, compiled with [ocamlopt -shared] and loaded with
      [Dynlink]. Compiled modules are cached on disk (under
      [RTRT_PLAN_CACHE_DIR/spec] when the plan cache is configured)
      keyed by a fingerprint over the schedule content, the OCaml
      version, word size, and OS, plus an in-process memo.

    Every failure to reach a higher tier — no toolchain, compile
    error, emitter budget overflow, unprofitable shape — degrades
    gracefully to the next tier down and bumps
    [specialize.fallbacks]. By default the chosen tier is verified
    bitwise against the interpreted walk on two-step state copies
    before it is returned. Gauges: [specialize.tier] (0/1/2),
    [specialize.runs_detected], [specialize.compile_ns]; counters:
    [specialize.compiles], [specialize.cmxs_cache_hits],
    [specialize.memo_hits], [specialize.fallbacks]. *)

type tier = Interp | Shaped | Codegen

val tier_name : tier -> string

type t = {
  tier : tier;
  shape : Reorder.Shape.t;
  summary : Reorder.Shape.summary;
  run : steps:int -> unit;
      (** Execute [steps] schedule walks on the kernel state the
          specialization was built from. For [Kernels.Kernel.t]
          kernels this matches [run_tiled ~steps]; for Gauss-Seidel
          each step is one whole schedule walk ([sweeps] sweeps). *)
  compile_seconds : float;
      (** Tier B out-of-process compile time; 0 on a cache hit or for
          the other tiers. *)
  cmxs_cache_hit : bool;
      (** Tier B executor came from the in-process memo or the on-disk
          [.cmxs] cache rather than a fresh compile. *)
  key : string;  (** 16-hex-digit schedule fingerprint. *)
}

(** Is Tier B requested? The [set_enabled] override if any, else
    [RTRT_SPECIALIZE] (default off). Tier A needs no opt-in. *)
val enabled : unit -> bool

(** Programmatic override of [RTRT_SPECIALIZE] (the CLI's
    [--specialize] flag). *)
val set_enabled : bool -> unit

(** Specialize [kernel]'s execution of [sched]. [tier_b] overrides
    {!enabled} for this call; [verify] (default [true]) asserts the
    chosen tier bitwise against [run_tiled] on two-step copies and
    raises [Failure] on divergence. Never raises for a missing
    toolchain — that is a counted fallback. *)
val make :
  ?tier_b:bool -> ?verify:bool -> Kernels.Kernel.t -> Reorder.Schedule.t -> t

(** {!make} for the Gauss-Seidel smoother ([run ~steps] executes
    [steps] whole schedule walks; verification compares [u] and [f]
    bitwise). *)
val make_gs :
  ?tier_b:bool ->
  ?verify:bool ->
  Kernels.Gauss_seidel.t ->
  Reorder.Schedule.t ->
  t

(** The exact Tier B source {!make} would compile for this pair (no
    toolchain needed), for [rtrt codegen --plan]. [None] when the
    emitter declines (unknown kernel or source-budget overflow). *)
val dump_source :
  Kernels.Kernel.t -> Reorder.Schedule.t -> string option
