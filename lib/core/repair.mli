(** Incremental plan repair under graph churn.

    Every other entry point in this library inspects a frozen access
    pattern once. Real MD re-neighbors every few hundred steps; after
    k% of interactions are rewired ({!Datagen.Churn.rewire}), a cold
    re-inspection throws away an almost-entirely-valid composed
    permutation and schedule. Repair keeps both: the old plan's
    composed reorderings (sigma, delta) and its seed tiling are frozen
    and replayed onto the churned kernel, and tile growth is re-run
    {e only} for the iterations whose dependence neighborhoods
    intersect the damage set — every other iteration's grown tile is
    the min/max of an unchanged set and cannot move. The recomputed
    memberships are spliced back into the flat-CSR schedule in place
    ({!Reorder.Schedule.splice}), so the cost is proportional to the
    damage, not the dataset.

    {2 Contract}

    [repair state kernel ~damage] is {b bit-identical} to the frozen
    cold path {!regrow} — replaying the same frozen reorderings and
    re-running full growth from the frozen seed tiling over the whole
    churned access ([Reorder.Sparse_tile.full], whose backward scatter
    walk repair's per-node rule mirrors; see the
    [grow_backward_scatter] precondition in [sparse_tile.mli]) — in
    both the schedule ([Reorder.Schedule.equal]) and every executor
    result. Growth over min/max is order-independent and the damage
    set is exactly the set of iterations whose predecessor/successor
    multisets changed, so the equivalence is by construction;
    [~verify:true] re-checks it on every call.

    Against a {e true} cold re-inspection ([Compose.Inspector.run] on
    the churned kernel, which re-derives fresh reorderings) the
    repaired plan is equally {e legal} but generally picks different
    permutations, trading a little executor locality for a much
    cheaper inspector — the trade [Harness.Churnbench] measures
    (repair-vs-cold time ratio and steps-to-amortize).

    {2 Fallback}

    Past a damage threshold the incremental path stops paying: repair
    still replays both composed permutations and the splice touches
    every damaged row, while cold inspection re-derives better
    orderings. [`Auto] (the default) compares a machine-calibrated
    cost model of the repair — measured replay seconds plus a
    per-dependence-touch cost calibrated from the last cold
    inspection on this machine, the same ns-on-the-machine-clock
    costing style {!Harness.Autotune} scores plans with — against the
    measured cold inspector seconds, and falls back to
    [Compose.Inspector.run] when repair is not modeled to win (or when
    the plan is unsupported: cache-block growth, or a chain whose
    non-seed loops are not seed-adjacent node loops). After a
    fallback the state is re-seeded from the fresh inspection, so
    later rounds repair incrementally again.

    {2 Caching and specialization}

    Plan-cache keys are content-addressed over the access pattern, so
    churn re-fingerprints by construction: the pre-churn entry can
    never replay against the churned kernel. Repaired results are
    stored under their own {!fingerprint} — the cold ingredients of
    the churned kernel plus a repair tag and the frozen reorderings —
    so they never shadow what a cold inspection of the same kernel
    would cache. The result carries a freshly recomputed
    {!Reorder.Shape} summary, and the spliced schedule is a new value
    (fresh [items]/[row_ptr]), so Tier A shape indexes pinned to the
    old schedule ([Shape.for_schedule]) and Tier B [.cmxs] caches
    (keyed by schedule content) can never serve stale specializations.

    Observability: counters [repair.rounds], [repair.fallbacks_cold],
    [repair.nodes_recomputed], [repair.tiles_moved],
    [repair.damaged_edges], [repair.cache_replays]; gauges
    [repair.last_seconds], [repair.last_modeled_seconds]. *)

type state

(** Capture the repair state of a completed inspection: the frozen
    composed reorderings, the frozen seed tiling and per-loop tile
    functions (from the schedule), and the dependence adjacency of the
    inspected access in final coordinates. [plan] and [result] must be
    the very pair passed to / returned by {!Compose.Inspector.run}
    (same [strategy] / [share_symmetric_deps] as given here). *)
val prepare :
  ?strategy:Inspector.strategy ->
  ?share_symmetric_deps:bool ->
  Plan.t ->
  Inspector.result ->
  state

(** [Ok ()] when the incremental path applies; [Error reason] when
    every [repair] call will fall back to full re-inspection (plans
    without full-growth sparse tiling repair by pure replay and are
    supported). *)
val supported : state -> (unit, string) result

(** The current (latest repaired) schedule, [None] for non-tiling
    plans. *)
val schedule : state -> Reorder.Schedule.t option

(** The cache key of a {e repaired} inspection of [kernel]: the cold
    fingerprint ingredients of the churned kernel and plan, plus a
    repair tag and the frozen (sigma, delta) — distinct by
    construction from {!Compose.Inspector.fingerprint} of the same
    pair. *)
val fingerprint : state -> Kernels.Kernel.t -> Rtrt_plancache.Fingerprint.t

type info = {
  fell_back : bool;  (** took the full re-inspection path *)
  fallback_reason : string option;
  cache_replayed : bool;
      (** a stored repair of this exact churned state was found and
          verified against the freshly spliced result *)
  damaged_edges : int;
  damaged_nodes : int;
  nodes_recomputed : int;  (** growth re-evaluations performed *)
  tiles_moved : int;  (** schedule memberships that actually changed *)
  seconds : float;  (** wall time of this repair (or fallback) *)
  modeled_repair_seconds : float;
      (** the cost model's estimate for the incremental path *)
  cold_seconds_ref : float;
      (** the cold-inspection seconds the model compared against *)
  verified : bool option;  (** [Some] when [~verify] ran *)
}

(** Repair the plan for [kernel] — a fresh kernel over the churned
    dataset, in the {e original} (pre-reordering) coordinates, shaped
    exactly like the kernel the state was prepared from. [damage] is
    the churn's damage set in original coordinates. Returns the
    repaired (or, on fallback, freshly inspected) result plus what
    happened. The state is updated in place either way: successive
    churn rounds keep repairing incrementally.

    [policy] overrides the auto fallback: [`Repair] forces the
    incremental path (still subject to plan support), [`Cold] forces
    full re-inspection. [verify] (default [false]) re-checks the
    bit-identity contract against {!regrow} before returning. [cache]
    stores repaired results under {!fingerprint} and verifies against
    an existing entry on a hit; [pool] parallelizes the fallback
    inspection and the [verify] growth exactly as
    {!Compose.Inspector.run} would (output never depends on the
    domain count). *)
val repair :
  ?cache:Rtrt_plancache.Cache.t ->
  ?pool:Rtrt_par.Pool.t ->
  ?policy:[ `Auto | `Repair | `Cold ] ->
  ?verify:bool ->
  state ->
  Kernels.Kernel.t ->
  damage:Datagen.Churn.damage ->
  Inspector.result * info

(** The frozen cold path repair must reproduce bit for bit: replay the
    frozen reorderings onto [kernel] and re-run {e full} growth from
    the frozen seed tiling over the whole churned access. Reads only
    the frozen parts of the state (never mutates it), so it can be
    called after {!repair} on the same round for an independent
    check. *)
val regrow :
  ?pool:Rtrt_par.Pool.t -> state -> Kernels.Kernel.t -> Inspector.result

val pp_info : info Fmt.t
