(** The paper's core contribution: compile-time composition of run-time
    data and iteration reorderings.

    - {!Transform} / {!Plan}: compile-time descriptions of reordering
      transformations and validated compositions;
    - {!Symbolic}: the Kelly-Pugh-with-UFS effect computation — data
      mappings, dependences, and composed [R]/[T] relations (Section 5);
    - {!Inspector}: the composed run-time inspector with the
      [Remap_each] / [Remap_once] strategies and symmetric-dependence
      elision (Section 6);
    - {!Legality}: run-time verification that the generated reordering
      functions respect every dependence;
    - {!Repair}: incremental re-inspection under graph churn — repair
      a composed plan instead of recomputing it. *)

module Transform = Transform
module Plan = Plan
module Symbolic = Symbolic
module Inspector = Inspector
module Repair = Repair
module Legality = Legality
module Codegen = Codegen
module Specialize = Specialize
module Depcheck = Depcheck
module Timetile = Timetile
