(** Pseudo-code generation for composed inspectors and executors
    (Figures 10-15), derived mechanically from the symbolic state: the
    compile-time data mappings carry exactly the subscript chains a
    specialized inspector traverses (the paper's "automatic generation
    of specialized run-time inspectors" future work). Output is C-like
    pseudo-code for inspection, not compiled. *)

(** Render a term as a subscript chain: [sigma_cp(left(j))] becomes
    ["sigma_cp[left[j]]"]. *)
val subscript : Presburger.Term.t -> string

(** The subscript expressions of the loop at statement position [pos]
    in a data mapping, with the iteration variable renamed to [iv]. *)
val mapping_subscripts :
  pos:int -> iv:string -> Presburger.Rel.t -> string list

(** A specialized CPACK inspector (Figure 10/12 shape) traversing the
    given data mapping. *)
val cpack_inspector :
  instance:string -> program:Symbolic.program -> Presburger.Rel.t -> string

(** A specialized lexGroup inspector note. *)
val lexgroup_inspector :
  instance:string -> program:Symbolic.program -> Presburger.Rel.t -> string

(** The composed inspector driver (Figure 11 shape): one call per
    transformation, one final remap. *)
val composed_inspector : Symbolic.state -> string

(** The executor (Figure 13 plain / Figure 14 tiled shape). *)
val executor : Symbolic.state -> program:Symbolic.program -> string

(** Specialized inspectors for every step, the composed driver, and
    the executor. *)
val full_report : Symbolic.state -> program:Symbolic.program -> string

(** Tier B: the complete OCaml source of an executor specialized to one
    (kernel, schedule) pair — row bounds constant-folded, each row's
    runs of consecutive iterations emitted as literal range loops, loop
    bodies inlined at every site. [kernel] is one of ["moldyn"],
    ["nbf"], ["irreg"], ["gs"]; the executor is handed to the host via
    [Callback.register ("rtrt.spec." ^ key)]. [None] when the kernel is
    unknown, the shape was not built from [sched], or the source would
    exceed [max_bytes] (default 2 MiB) — callers fall back to the
    Tier A shaped walk. See {!Specialize} for the compile / load / cache
    pipeline and the executor's array-order convention. *)
val specialized_source :
  ?max_bytes:int ->
  kernel:string ->
  key:string ->
  Reorder.Schedule.t ->
  Reorder.Shape.t ->
  string option
