(* Run-time legality verification for composed transformations.

   The framework's compile-time rules (Section 4) constrain *which*
   transformations may be composed — {!Plan.validate} and
   {!Symbolic.apply} enforce those. This module verifies the *run-time
   reordering functions* the inspectors actually produced: for every
   dependence p -> q of the (transformed) program, the executor must
   visit p before q. *)

open Reorder

let ( let* ) r f = Result.bind r f

(* Rebuild the per-loop tile functions from a schedule. *)
let tile_fns_of_schedule sched ~loop_sizes =
  let rp = Schedule.row_ptr sched and fl = Schedule.flat_items sched in
  let nl = Schedule.n_loops sched in
  Array.mapi
    (fun l n ->
      let tile_of = Array.make n (-1) in
      for t = 0 to Schedule.n_tiles sched - 1 do
        let r = (t * nl) + l in
        for i = rp.(r) to rp.(r + 1) - 1 do
          tile_of.(fl.(i)) <- t
        done
      done;
      { Sparse_tile.n_tiles = Schedule.n_tiles sched; tile_of })
    loop_sizes

(* Check a tiled executor against the final kernel: coverage (every
   iteration exactly once) and dependence order (tile(p) <= tile(q)
   for every dependence edge between adjacent loops). *)
let check_tiled (kernel : Kernels.Kernel.t) sched =
  let loop_sizes = kernel.Kernels.Kernel.loop_sizes in
  let* () =
    if Schedule.check_coverage sched ~loop_sizes then Ok ()
    else Error "schedule does not cover every iteration exactly once"
  in
  let chain = kernel.Kernels.Kernel.chain_of_access kernel.Kernels.Kernel.access in
  let tiles = tile_fns_of_schedule sched ~loop_sizes in
  let* () =
    if Array.exists (fun tf -> Array.exists (fun t -> t < 0) tf.Sparse_tile.tile_of) tiles
    then Error "schedule misses iterations"
    else Ok ()
  in
  match Sparse_tile.check_legality ~chain ~tiles with
  | [] -> Ok ()
  | (l, a, b) :: _ ->
    Error
      (Fmt.str "dependence violated between loops %d and %d: %d -> %d" l
         (l + 1) a b)

(* Check an untransformed-shape executor: with only data and
   interaction-loop reorderings, legality reduces to (a) both
   reordering functions being bijections (checked on construction) and
   (b) the interaction loop carrying only reduction dependences, which
   the kernel descriptions assert (Section 4, footnote 3). We verify
   (a) dynamically as belt and braces. *)
let check_plain (result : Inspector.result) =
  let check_perm name p n =
    if Perm.size p <> n then Error (Fmt.str "%s has wrong size" name) else Ok ()
  in
  let k = result.Inspector.kernel in
  let* () =
    check_perm "sigma" result.Inspector.sigma_total k.Kernels.Kernel.n_nodes
  in
  check_perm "delta" result.Inspector.delta_total k.Kernels.Kernel.n_inter

(* Full verification of an inspector result. *)
let check (result : Inspector.result) =
  let* () = check_plain result in
  match result.Inspector.schedule with
  | None -> Ok ()
  | Some sched -> check_tiled result.Inspector.kernel sched
