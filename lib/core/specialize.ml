(* Staged executor specialization over a frozen schedule (ROADMAP
   item 2). Two tiers above the interpreted flat-CSR walk:

   - Tier A (Shaped, always on when profitable): the plan-time
     {!Reorder.Shape} analysis builds a run-length index once per
     schedule and the kernels' [run_tiled_shaped] executors stream it
     as [for lo to hi] ranges instead of loading iteration ids.

   - Tier B (Codegen, opt-in via [--specialize] / RTRT_SPECIALIZE):
     {!Codegen.specialized_source} emits a straight-line OCaml module
     for the exact (kernel, schedule) pair, compiled out-of-process
     with ocamlopt -shared and loaded with [Dynlink]. Compiled [.cmxs]
     files are cached on disk keyed by a fingerprint over the schedule
     content and the compiler identity, plus an in-process memo, so a
     plan-cache hit never recompiles.

   The dynlinked module references only [Stdlib] and publishes its
   executor through [Callback.register "rtrt.spec.<key>"]; the host
   reads the same registry back through a C stub around
   [caml_named_value] (see specialize_stubs.c). The executor takes the
   kernel's arrays as arguments — int arrays first (index arrays in
   [Kernels.Kernel.exec_arrays] order, then the schedule's flat items),
   float arrays second — so one compiled module can drive any state
   copy of the kernel, which is how the bitwise verification below
   runs it against the interpreted walk without disturbing the real
   state.

   Both tiers are bitwise identical to [run_tiled]; [make] asserts
   this on two-step copies by default, the same way rtrt_par asserts
   parallel-vs-serial equivalence. Every downgrade (no toolchain,
   compile failure, source-budget overflow, unprofitable shape) is
   graceful and counted in [specialize.fallbacks]. *)

type tier = Interp | Shaped | Codegen

let tier_name = function
  | Interp -> "interp"
  | Shaped -> "shaped"
  | Codegen -> "codegen"

let tier_level = function Interp -> 0. | Shaped -> 1. | Codegen -> 2.

type t = {
  tier : tier;
  shape : Reorder.Shape.t;
  summary : Reorder.Shape.summary;
  run : steps:int -> unit;
  compile_seconds : float;
      (** Tier B out-of-process compile time; 0 on a cache hit or for
          the other tiers. *)
  cmxs_cache_hit : bool;
  key : string;  (** 16-hex-digit schedule fingerprint. *)
}

(* -------------------------------------------------------------- *)
(* Observability *)

let g_tier = Rtrt_obs.Metrics.gauge "specialize.tier"
let g_runs = Rtrt_obs.Metrics.gauge "specialize.runs_detected"
let g_compile_ns = Rtrt_obs.Metrics.gauge "specialize.compile_ns"
let c_compiles = Rtrt_obs.Metrics.counter "specialize.compiles"
let c_cmxs_hits = Rtrt_obs.Metrics.counter "specialize.cmxs_cache_hits"
let c_memo_hits = Rtrt_obs.Metrics.counter "specialize.memo_hits"
let c_fallbacks = Rtrt_obs.Metrics.counter "specialize.fallbacks"

(* -------------------------------------------------------------- *)
(* Enabling Tier B *)

let override = ref None
let set_enabled b = override := Some b

let enabled () =
  match !override with
  | Some b -> b
  | None -> Rtrt_obs.Config.env_bool ~name:"RTRT_SPECIALIZE" ~default:false ()

(* -------------------------------------------------------------- *)
(* Compiled-executor plumbing *)

type exec = int array array -> float array array -> int -> unit

external get_named : string -> Obj.t option = "rtrt_specialize_get_named"

(* Keep the Callback registry linked into the host so plugin-side
   [Callback.register] and the stub's [caml_named_value] meet in the
   same table. *)
let () = Callback.register "rtrt.spec.host" (fun () -> ())

let fetch_exec key : exec option =
  match get_named ("rtrt.spec." ^ key) with
  | Some o -> Some (Obj.obj o : exec)
  | None -> None

(* Compiler discovery: RTRT_SPECIALIZE_OCAMLOPT overrides (probed, so
   pointing it at a nonexistent binary simulates a toolchain-free
   host); otherwise the first of ocamlfind ocamlopt / ocamlopt.opt /
   ocamlopt that answers [-version]. *)
let probe cmd = Sys.command (cmd ^ " -version >/dev/null 2>&1") = 0

let find_compiler () =
  match Sys.getenv_opt "RTRT_SPECIALIZE_OCAMLOPT" with
  | Some cmd when String.trim cmd <> "" ->
    let cmd = String.trim cmd in
    if probe cmd then Some cmd else None
  | _ -> List.find_opt probe [ "ocamlfind ocamlopt"; "ocamlopt.opt"; "ocamlopt" ]

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Compiled modules live next to the plan cache when one is configured
   (same locality story: the fingerprint names both), else under the
   system temp dir. *)
let cache_dir () =
  match Rtrt_obs.Config.env_dir ~name:"RTRT_PLAN_CACHE_DIR" () with
  | Some d -> Filename.concat d "spec"
  | None -> Filename.concat (Filename.get_temp_dir_name ()) "rtrt-spec"

(* Bumped whenever the emitted code changes meaning, so stale cached
   .cmxs never survive an emitter upgrade. *)
let emitter_version = 1

let schedule_key ~kernel ~n_nodes ~n_inter (sched : Reorder.Schedule.t) =
  let b = Rtrt_plancache.Fingerprint.create () in
  Rtrt_plancache.Fingerprint.add_string b kernel;
  Rtrt_plancache.Fingerprint.add_int b n_nodes;
  Rtrt_plancache.Fingerprint.add_int b n_inter;
  Rtrt_plancache.Fingerprint.add_int b (Reorder.Schedule.n_loops sched);
  Rtrt_plancache.Fingerprint.add_int_array b (Reorder.Schedule.row_ptr sched);
  Rtrt_plancache.Fingerprint.add_int_array b (Reorder.Schedule.flat_items sched);
  Rtrt_plancache.Fingerprint.add_string b Sys.ocaml_version;
  Rtrt_plancache.Fingerprint.add_int b Sys.word_size;
  Rtrt_plancache.Fingerprint.add_string b Sys.os_type;
  Rtrt_plancache.Fingerprint.add_int b emitter_version;
  Rtrt_plancache.Fingerprint.to_hex (Rtrt_plancache.Fingerprint.value b)

let memo : (string, exec) Hashtbl.t = Hashtbl.create 16
let memo_mutex = Mutex.create ()
let with_memo f = Mutex.protect memo_mutex f

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let load_cmxs cmxs key =
  try
    Dynlink.loadfile_private cmxs;
    fetch_exec key
  with Dynlink.Error _ | Sys_error _ -> None

(* Compile [source] (or reuse the cached .cmxs) and return the
   executor with its compile time and whether the disk cache hit. *)
let compile_and_load ~kernel ~key source : (exec * float * bool) option =
  match with_memo (fun () -> Hashtbl.find_opt memo key) with
  | Some f ->
    Rtrt_obs.Metrics.incr c_memo_hits;
    Some (f, 0., true)
  | None -> (
    let dir = cache_dir () in
    mkdir_p dir;
    let stem = Filename.concat dir (Printf.sprintf "spec_%s_%s" kernel key) in
    let ml = stem ^ ".ml" and cmxs = stem ^ ".cmxs" in
    let from_disk =
      if Sys.file_exists cmxs then
        match load_cmxs cmxs key with
        | Some f ->
          Rtrt_obs.Metrics.incr c_cmxs_hits;
          Some (f, 0., true)
        | None -> None
      else None
    in
    match from_disk with
    | Some (f, _, _) as r ->
      with_memo (fun () -> Hashtbl.replace memo key f);
      r
    | None -> (
      match find_compiler () with
      | None -> None
      | Some cc -> (
        write_file ml source;
        (* Compile to a temp name and rename so concurrent processes
           only ever see complete .cmxs files. *)
        let tmp = stem ^ ".tmp.cmxs" and log = stem ^ ".log" in
        let cmd =
          Printf.sprintf "%s -shared -w -a -o %s %s >%s 2>&1" cc
            (Filename.quote tmp) (Filename.quote ml) (Filename.quote log)
        in
        let rc, secs = Rtrt_obs.Clock.time (fun () -> Sys.command cmd) in
        if rc <> 0 then None
        else begin
          (try Sys.rename tmp cmxs with Sys_error _ -> ());
          Rtrt_obs.Metrics.incr c_compiles;
          Rtrt_obs.Metrics.set g_compile_ns (secs *. 1e9);
          match load_cmxs cmxs key with
          | None -> None
          | Some f ->
            with_memo (fun () -> Hashtbl.replace memo key f);
            Some (f, secs, false)
        end)))

(* -------------------------------------------------------------- *)
(* Host-side validation: the emitted bodies use unsafe accesses, so
   before ever running compiled code we prove every index in bounds —
   [check_fits] covers the iteration ids ([of_tile_fns] builds each
   loop's items as a permutation, so total = size implies id < size),
   and a one-time endpoint scan covers the kernel's own index
   arrays. *)

let endpoints_in_range ~n (arrs : int array array) =
  let ok = ref true in
  Array.iter
    (fun arr ->
      for i = 0 to Array.length arr - 1 do
        let v = Array.unsafe_get arr i in
        if v < 0 || v >= n then ok := false
      done)
    arrs;
  !ok

let bits_equal (a : float array) (b : float array) =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if Int64.bits_of_float a.(i) <> Int64.bits_of_float b.(i) then ok := false
  done;
  !ok

(* -------------------------------------------------------------- *)
(* Kernel.t kernels (moldyn / nbf / irreg) *)

let exec_args (kernel : Kernels.Kernel.t) sched =
  let ia, fa = kernel.Kernels.Kernel.exec_arrays () in
  (Array.append ia [| Reorder.Schedule.flat_items sched |], fa)

let finish ~verify_run result =
  (match result.tier with
  | Interp -> ()
  | Shaped | Codegen -> verify_run result);
  Rtrt_obs.Metrics.set g_tier (tier_level result.tier);
  Rtrt_obs.Metrics.set g_runs (float_of_int result.summary.Reorder.Shape.runs);
  result

(* Verification steps: enough to cover every chain class and catch
   order-of-visit divergence, cheap enough to run by default. *)
let verify_steps = 2

let make ?tier_b ?(verify = true) (kernel : Kernels.Kernel.t)
    (sched : Reorder.Schedule.t) =
  let shape = Reorder.Shape.analyze sched in
  let summary = Reorder.Shape.summary shape in
  let key =
    schedule_key ~kernel:kernel.Kernels.Kernel.name
      ~n_nodes:kernel.Kernels.Kernel.n_nodes
      ~n_inter:kernel.Kernels.Kernel.n_inter sched
  in
  let want_b = match tier_b with Some b -> b | None -> enabled () in
  let base tier run =
    {
      tier;
      shape;
      summary;
      run;
      compile_seconds = 0.;
      cmxs_cache_hit = false;
      key;
    }
  in
  let shaped () =
    if Reorder.Shape.profitable summary then
      base Shaped (fun ~steps ->
          kernel.Kernels.Kernel.run_tiled_shaped sched shape ~steps)
    else base Interp (fun ~steps -> kernel.Kernels.Kernel.run_tiled sched ~steps)
  in
  let codegen () =
    if
      not
        (Reorder.Schedule.check_fits sched
           ~loop_sizes:kernel.Kernels.Kernel.loop_sizes)
    then None
    else
      let ia, _ = kernel.Kernels.Kernel.exec_arrays () in
      if not (endpoints_in_range ~n:kernel.Kernels.Kernel.n_nodes ia) then None
      else
        match
          Codegen.specialized_source ~kernel:kernel.Kernels.Kernel.name ~key
            sched shape
        with
        | None -> None
        | Some source -> (
          match compile_and_load ~kernel:kernel.Kernels.Kernel.name ~key source with
          | None -> None
          | Some (exec, compile_seconds, cmxs_cache_hit) ->
            Some
              {
                tier = Codegen;
                shape;
                summary;
                run =
                  (fun ~steps ->
                    let ia, fa = exec_args kernel sched in
                    exec ia fa steps);
                compile_seconds;
                cmxs_cache_hit;
                key;
              })
  in
  let result =
    if not want_b then shaped ()
    else
      match codegen () with
      | Some r -> r
      | None ->
        Rtrt_obs.Metrics.incr c_fallbacks;
        shaped ()
  in
  let verify_run r =
    if verify then begin
      let reference = kernel.Kernels.Kernel.copy () in
      let candidate = kernel.Kernels.Kernel.copy () in
      reference.Kernels.Kernel.run_tiled sched ~steps:verify_steps;
      (match r.tier with
      | Interp -> ()
      | Shaped ->
        candidate.Kernels.Kernel.run_tiled_shaped sched shape
          ~steps:verify_steps
      | Codegen -> (
        match
          compile_and_load ~kernel:kernel.Kernels.Kernel.name ~key
            "(* cached *)"
        with
        | Some (exec, _, _) ->
          let ia, fa = exec_args candidate sched in
          exec ia fa verify_steps
        | None -> failwith "Specialize: compiled executor vanished"));
      if
        not
          (Kernels.Kernel.snapshots_equal_bits
             (reference.Kernels.Kernel.snapshot ())
             (candidate.Kernels.Kernel.snapshot ()))
      then
        failwith
          (Printf.sprintf
             "Specialize: %s tier diverged bitwise from run_tiled (%s/%s)"
             (tier_name r.tier) kernel.Kernels.Kernel.name r.key)
    end
  in
  finish ~verify_run result

(* -------------------------------------------------------------- *)
(* Gauss-Seidel (separate state type; a schedule walk is the tiling's
   [sweeps] sweeps, so [run ~steps] executes [steps] whole schedule
   walks). *)

let make_gs ?tier_b ?(verify = true) (t : Kernels.Gauss_seidel.t)
    (sched : Reorder.Schedule.t) =
  let shape = Reorder.Shape.analyze sched in
  let summary = Reorder.Shape.summary shape in
  let n = Irgraph.Csr.num_nodes t.Kernels.Gauss_seidel.graph in
  let key =
    schedule_key ~kernel:"gs" ~n_nodes:n
      ~n_inter:(Irgraph.Csr.num_arcs t.Kernels.Gauss_seidel.graph)
      sched
  in
  let want_b = match tier_b with Some b -> b | None -> enabled () in
  let base tier run =
    {
      tier;
      shape;
      summary;
      run;
      compile_seconds = 0.;
      cmxs_cache_hit = false;
      key;
    }
  in
  let interp_walk st steps =
    for _s = 1 to steps do
      Kernels.Gauss_seidel.run_sched st sched
    done
  in
  let shaped_walk st steps =
    for _s = 1 to steps do
      Kernels.Gauss_seidel.run_sched_shaped st sched shape
    done
  in
  let shaped () =
    if Reorder.Shape.profitable summary then
      base Shaped (fun ~steps -> shaped_walk t steps)
    else base Interp (fun ~steps -> interp_walk t steps)
  in
  let gs_args st =
    let ptr, adj = Kernels.Gauss_seidel.csr_arrays st.Kernels.Gauss_seidel.graph in
    ( [| ptr; adj; Reorder.Schedule.flat_items sched |],
      [| st.Kernels.Gauss_seidel.u; st.Kernels.Gauss_seidel.f |] )
  in
  let codegen () =
    if not (Reorder.Schedule.check_fits sched ~loop_sizes:[| n |]) then None
    else
      match Codegen.specialized_source ~kernel:"gs" ~key sched shape with
      | None -> None
      | Some source -> (
        match compile_and_load ~kernel:"gs" ~key source with
        | None -> None
        | Some (exec, compile_seconds, cmxs_cache_hit) ->
          let ia, fa = gs_args t in
          Some
            {
              tier = Codegen;
              shape;
              summary;
              run = (fun ~steps -> exec ia fa steps);
              compile_seconds;
              cmxs_cache_hit;
              key;
            })
  in
  let result =
    if not want_b then shaped ()
    else
      match codegen () with
      | Some r -> r
      | None ->
        Rtrt_obs.Metrics.incr c_fallbacks;
        shaped ()
  in
  let verify_run r =
    if verify then begin
      let reference = Kernels.Gauss_seidel.copy t in
      let candidate = Kernels.Gauss_seidel.copy t in
      interp_walk reference verify_steps;
      (match r.tier with
      | Interp -> ()
      | Shaped -> shaped_walk candidate verify_steps
      | Codegen -> (
        match compile_and_load ~kernel:"gs" ~key "(* cached *)" with
        | Some (exec, _, _) ->
          let ia, fa = gs_args candidate in
          exec ia fa verify_steps
        | None -> failwith "Specialize: compiled executor vanished"));
      if
        not
          (bits_equal reference.Kernels.Gauss_seidel.u
             candidate.Kernels.Gauss_seidel.u
          && bits_equal reference.Kernels.Gauss_seidel.f
               candidate.Kernels.Gauss_seidel.f)
      then
        failwith
          (Printf.sprintf
             "Specialize: %s tier diverged bitwise from run_sched (gs/%s)"
             (tier_name r.tier) r.key)
    end
  in
  finish ~verify_run result

(* -------------------------------------------------------------- *)
(* Source dump for [rtrt codegen --plan]: the exact Tier B module that
   would be compiled, independent of whether a toolchain exists. *)

let dump_source (kernel : Kernels.Kernel.t) (sched : Reorder.Schedule.t) =
  let shape = Reorder.Shape.analyze sched in
  let key =
    schedule_key ~kernel:kernel.Kernels.Kernel.name
      ~n_nodes:kernel.Kernels.Kernel.n_nodes
      ~n_inter:kernel.Kernels.Kernel.n_inter sched
  in
  Codegen.specialized_source ~kernel:kernel.Kernels.Kernel.name ~key sched
    shape
