(* Plans: compositions of run-time reordering transformations, with
   static validation and the standard compositions of the paper's
   evaluation (Section 2.4):

     base, CPACK, CPACK+lexGroup (CL), Gpart+lexGroup (GL),
     CL+CL, and each of the last three followed by full sparse
     tiling + tilePack. *)

type t = {
  name : string;
  transforms : Transform.t list;
}

let make ~name transforms = { name; transforms }

let transforms p = p.transforms
let name p = p.name

(* Number of data reorderings — determines how many remaps a
   Remap_each inspector performs (Section 6 / Figure 16). *)
let n_data_reorders p =
  List.length (List.filter Transform.is_data_reorder p.transforms)

let has_sparse_tiling p =
  List.exists
    (function Transform.Sparse_tile _ -> true | _ -> false)
    p.transforms

(* Static validation of composition rules (Section 4):
   - iteration reorderings that ignore dependences (lexGroup, lexSort,
     bucket tiling) may not follow a sparse tiling: they would destroy
     the tile-induced order;
   - tilePack requires an earlier sparse tiling (it traverses the tile
     function);
   - at most one sparse tiling per plan (the executor runs one tiled
     schedule). *)
let validate p =
  let rec go ~tiled = function
    | [] -> Ok ()
    | Transform.Sparse_tile _ :: _ when tiled ->
      Error "plan: multiple sparse tilings"
    | Transform.Sparse_tile _ :: rest -> go ~tiled:true rest
    | Transform.Iter_reorder _ :: _ when tiled ->
      Error "plan: dependence-free iteration reordering after sparse tiling"
    | Transform.Data_reorder Transform.Tile_pack :: _ when not tiled ->
      Error "plan: tilePack without a preceding sparse tiling"
    | (Transform.Iter_reorder _ | Transform.Data_reorder _) :: rest ->
      go ~tiled rest
  in
  go ~tiled:false p.transforms

(* ------------------------------------------------------------------ *)
(* The paper's standard compositions. Partition sizes are in
   iterations/nodes and are chosen by the caller from the cache-size
   target (Section 2.4 targets the L1). *)

let base = make ~name:"base" []

let cpack = make ~name:"cpack" [ Transform.Data_reorder Transform.Cpack ]

let cpack_lexgroup =
  make ~name:"CL"
    [
      Transform.Data_reorder Transform.Cpack;
      Transform.Iter_reorder Transform.Lexgroup;
    ]

let gpart_lexgroup ~part_size =
  make ~name:"GL"
    [
      Transform.Data_reorder (Transform.Gpart { part_size });
      Transform.Iter_reorder Transform.Lexgroup;
    ]

let gpart_cpack ~part_size =
  make ~name:"GC"
    [
      Transform.Data_reorder (Transform.Gpart { part_size });
      Transform.Data_reorder Transform.Cpack;
    ]

let cpack_lexgroup_twice =
  make ~name:"CLCL"
    [
      Transform.Data_reorder Transform.Cpack;
      Transform.Iter_reorder Transform.Lexgroup;
      Transform.Data_reorder Transform.Cpack;
      Transform.Iter_reorder Transform.Lexgroup;
    ]

(* Append full sparse tiling (block seed, as Section 2.3 recommends
   after a good data+iteration reordering) followed by tilePack. *)
let with_fst ?(tile_pack = true) ~seed_part_size p =
  let fst_t =
    Transform.Sparse_tile
      {
        growth = Transform.Full;
        seed = Transform.Seed_block { part_size = seed_part_size };
      }
  in
  let tail =
    if tile_pack then [ fst_t; Transform.Data_reorder Transform.Tile_pack ]
    else [ fst_t ]
  in
  make ~name:(p.name ^ "+FST") (p.transforms @ tail)

let with_cache_block ~seed_part_size p =
  make ~name:(p.name ^ "+CB")
    (p.transforms
    @ [
        Transform.Sparse_tile
          {
            growth = Transform.Cache_block;
            seed = Transform.Seed_block { part_size = seed_part_size };
          };
      ])

(* The full suite of Figures 6-9: data/iteration compositions and
   their sparse-tiled extensions. *)
let standard_suite ~gpart_size ~seed_part_size =
  [
    base;
    cpack;
    cpack_lexgroup;
    gpart_lexgroup ~part_size:gpart_size;
    cpack_lexgroup_twice;
    with_fst ~seed_part_size cpack_lexgroup;
    with_fst ~seed_part_size (gpart_lexgroup ~part_size:gpart_size);
    with_fst ~seed_part_size cpack_lexgroup_twice;
  ]

let pp ppf p =
  Fmt.pf ppf "%s = [%a]" p.name Fmt.(list ~sep:(any "; ") Transform.pp)
    p.transforms
