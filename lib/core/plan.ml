(* Plans: compositions of run-time reordering transformations, with
   static validation and the standard compositions of the paper's
   evaluation (Section 2.4):

     base, CPACK, CPACK+lexGroup (CL), Gpart+lexGroup (GL),
     CL+CL, and each of the last three followed by full sparse
     tiling + tilePack. *)

type t = {
  name : string;
  transforms : Transform.t list;
}

let make ~name transforms = { name; transforms }

let transforms p = p.transforms
let name p = p.name

(* Number of data reorderings — determines how many remaps a
   Remap_each inspector performs (Section 6 / Figure 16). *)
let n_data_reorders p =
  List.length (List.filter Transform.is_data_reorder p.transforms)

let has_sparse_tiling p =
  List.exists
    (function Transform.Sparse_tile _ -> true | _ -> false)
    p.transforms

(* Static validation of composition rules (Section 4):
   - iteration reorderings that ignore dependences (lexGroup, lexSort,
     bucket tiling) may not follow a sparse tiling: they would destroy
     the tile-induced order;
   - tilePack requires an earlier sparse tiling (it traverses the tile
     function);
   - at most one sparse tiling per plan (the executor runs one tiled
     schedule). *)
let validate p =
  let rec go ~tiled = function
    | [] -> Ok ()
    | Transform.Sparse_tile _ :: _ when tiled ->
      Error "plan: multiple sparse tilings"
    | Transform.Sparse_tile _ :: rest -> go ~tiled:true rest
    | Transform.Iter_reorder _ :: _ when tiled ->
      Error "plan: dependence-free iteration reordering after sparse tiling"
    | Transform.Data_reorder Transform.Tile_pack :: _ when not tiled ->
      Error "plan: tilePack without a preceding sparse tiling"
    | (Transform.Iter_reorder _ | Transform.Data_reorder _) :: rest ->
      go ~tiled rest
  in
  go ~tiled:false p.transforms

(* ------------------------------------------------------------------ *)
(* The paper's standard compositions. Partition sizes are in
   iterations/nodes and are chosen by the caller from the cache-size
   target (Section 2.4 targets the L1). *)

let base = make ~name:"base" []

let cpack = make ~name:"cpack" [ Transform.Data_reorder Transform.Cpack ]

let cpack_lexgroup =
  make ~name:"CL"
    [
      Transform.Data_reorder Transform.Cpack;
      Transform.Iter_reorder Transform.Lexgroup;
    ]

let gpart_lexgroup ~part_size =
  make ~name:"GL"
    [
      Transform.Data_reorder (Transform.Gpart { part_size });
      Transform.Iter_reorder Transform.Lexgroup;
    ]

let gpart_cpack ~part_size =
  make ~name:"GC"
    [
      Transform.Data_reorder (Transform.Gpart { part_size });
      Transform.Data_reorder Transform.Cpack;
    ]

let cpack_lexgroup_twice =
  make ~name:"CLCL"
    [
      Transform.Data_reorder Transform.Cpack;
      Transform.Iter_reorder Transform.Lexgroup;
      Transform.Data_reorder Transform.Cpack;
      Transform.Iter_reorder Transform.Lexgroup;
    ]

(* Append full sparse tiling (block seed, as Section 2.3 recommends
   after a good data+iteration reordering) followed by tilePack. *)
let with_fst ?(tile_pack = true) ~seed_part_size p =
  let fst_t =
    Transform.Sparse_tile
      {
        growth = Transform.Full;
        seed = Transform.Seed_block { part_size = seed_part_size };
      }
  in
  let tail =
    if tile_pack then [ fst_t; Transform.Data_reorder Transform.Tile_pack ]
    else [ fst_t ]
  in
  make ~name:(p.name ^ "+FST") (p.transforms @ tail)

let with_cache_block ~seed_part_size p =
  make ~name:(p.name ^ "+CB")
    (p.transforms
    @ [
        Transform.Sparse_tile
          {
            growth = Transform.Cache_block;
            seed = Transform.Seed_block { part_size = seed_part_size };
          };
      ])

(* The full suite of Figures 6-9: data/iteration compositions and
   their sparse-tiled extensions, including the fused-inspector GC
   composition and its tiled extension. *)
let standard_suite ~gpart_size ~seed_part_size =
  [
    base;
    cpack;
    cpack_lexgroup;
    gpart_lexgroup ~part_size:gpart_size;
    gpart_cpack ~part_size:gpart_size;
    cpack_lexgroup_twice;
    with_fst ~seed_part_size cpack_lexgroup;
    with_fst ~seed_part_size (gpart_lexgroup ~part_size:gpart_size);
    with_fst ~seed_part_size (gpart_cpack ~part_size:gpart_size);
    with_fst ~seed_part_size cpack_lexgroup_twice;
  ]

(* ------------------------------------------------------------------ *)
(* Candidate enumeration for the autotuner: every composition over
   {cpack, gpart, lexGroup, lexSort, FST, tilePack} the tuner
   considers. Shape: a data/iteration prefix (at most two reordering
   stages, the depth the paper's own compositions use) followed by an
   optional full sparse tiling with or without tilePack. The
   enumeration is pruned by [validate] and deduplicated on the
   transform list, and it contains {!standard_suite} as a subset, so
   an autotuned winner can never lose to a hand-named plan under the
   same cost model. *)
let candidates ~gpart_size ~seed_part_size =
  let gpart = make ~name:"gpart" [ Transform.Data_reorder (Transform.Gpart { part_size = gpart_size }) ] in
  let cpack_lexsort =
    make ~name:"CS"
      [
        Transform.Data_reorder Transform.Cpack;
        Transform.Iter_reorder Transform.Lexsort;
      ]
  in
  let gpart_lexsort =
    make ~name:"GS"
      [
        Transform.Data_reorder (Transform.Gpart { part_size = gpart_size });
        Transform.Iter_reorder Transform.Lexsort;
      ]
  in
  let prefixes =
    [
      base;
      cpack;
      gpart;
      gpart_cpack ~part_size:gpart_size;
      cpack_lexgroup;
      cpack_lexsort;
      gpart_lexgroup ~part_size:gpart_size;
      gpart_lexsort;
      cpack_lexgroup_twice;
    ]
  in
  let tiled_variants p =
    let no_pack =
      let q = with_fst ~tile_pack:false ~seed_part_size p in
      make ~name:(p.name ^ "+FSTnp") q.transforms
    in
    [ p; with_fst ~seed_part_size p; no_pack ]
  in
  let all = List.concat_map tiled_variants prefixes in
  let valid = List.filter (fun p -> validate p = Ok ()) all in
  (* Dedupe on the transform list (names are presentation only). *)
  List.rev
    (List.fold_left
       (fun acc p ->
         if List.exists (fun q -> q.transforms = p.transforms) acc then acc
         else p :: acc)
       [] valid)

let pp ppf p =
  Fmt.pf ppf "%s = [%a]" p.name Fmt.(list ~sep:(any "; ") Transform.pp)
    p.transforms
