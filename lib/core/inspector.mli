(** The composed run-time inspector (Section 5, Figures 11 and 15):
    runs each transformation's inspector against the data mappings and
    dependences as modified by the previously planned inspectors. *)

(** Section 6's remap trade-off: [Remap_each] remaps the kernel after
    every transformation (Figure 15); [Remap_once] adjusts only the
    index arrays along the way and remaps the data arrays a single
    time at the end (Figure 11); [Fused] goes one step further and
    defers the index and schedule updates too — inspectors traverse a
    *view* of the original access through the composed (sigma, delta)
    accumulators (updated in place with {!Reorder.Perm.compose_into}),
    so a composition performs one pass over the access per
    transformation and one final remap. Results are identical across
    all three (bit for bit); only the inspector cost differs
    (Figure 16). *)
type strategy = Remap_each | Remap_once | Fused

type result = {
  kernel : Kernels.Kernel.t; (** transformed kernel for the executor *)
  schedule : Reorder.Schedule.t option;
      (** tile schedule when the plan sparse-tiles *)
  sigma_total : Reorder.Perm.t; (** composed data reordering *)
  delta_total : Reorder.Perm.t; (** composed interaction reordering *)
  inspector_seconds : float;
  n_data_remaps : int; (** full data-array remap passes performed *)
  reordering_fns : (string * Reorder.Perm.t) list;
      (** each generated reordering function, named as the symbolic
          layer names it (sigma_cp, delta_lg, sigma_cp2, ...), so
          compile-time formulas can be evaluated against run-time
          output *)
  shape_summary : Reorder.Shape.summary option;
      (** plan-time shape analysis of [schedule], for the staged
          executor tier choice; cached with the plan and surfaced
          (stored or recomputed) on warm replays *)
}

(** The plan-cache key for an inspection: a stable hash of the
    kernel's shape and access pattern, the plan's transformations and
    parameters, the remap strategy, and the symmetric-dependence flag.
    Defaults match {!run}'s defaults. The plan name is excluded — two
    differently-named plans with the same transforms share a key, and
    [Fused] fingerprints as [Remap_once] (their results are
    bit-identical, so cache entries interchange; the agreement is
    verified when a fused run stores over an existing entry). *)
val fingerprint :
  ?strategy:strategy ->
  ?share_symmetric_deps:bool ->
  Plan.t ->
  Kernels.Kernel.t ->
  Rtrt_plancache.Fingerprint.t

(** [run ?strategy ?share_symmetric_deps plan kernel] validates the
    plan and executes the composed inspector. The kernel is copied
    first; the caller's arrays are never aliased.
    [share_symmetric_deps] enables the Section 6 symmetric-dependence
    elision during sparse-tile growth (default true). Default strategy
    is [Remap_once]. When [pool] is given (and has more than one
    domain), the inspector hot paths — CPACK, lexGroup, Gpart,
    multilevel, graph construction, tile growth (which then walks only
    the predecessor dependence set, reconstructing the successor
    direction by scatter-min), legality checking, tilePack, and the
    fused view materialization — run on the pool; their output is
    bit-identical to the serial algorithms, so results never depend on
    the domain count.

    When [cache] is given, the inspection is keyed by {!fingerprint}:
    a hit skips every per-transformation inspector and replays the
    cached reordering functions onto a fresh kernel copy (bit-identical
    to the cold run, since both remap strategies reduce to applying
    the composed delta then sigma); a miss runs the inspectors and
    stores the result. *)
val run :
  ?cache:Rtrt_plancache.Cache.t ->
  ?pool:Rtrt_par.Pool.t ->
  ?strategy:strategy ->
  ?share_symmetric_deps:bool ->
  Plan.t ->
  Kernels.Kernel.t ->
  result
