(* Incremental plan repair under graph churn.

   The frozen parts of a completed inspection — the composed
   reorderings (sigma, delta) and the seed tiling — stay valid across
   a rewire: permutations are bijections whatever the edge list says,
   and the seed partition never depended on the edges being any
   particular edges. What churn invalidates is tile *growth*: a grown
   tile is the min (backward) or max (forward) of the seed tiles of
   the node's incident interactions, so it can only change for nodes
   whose incident multiset changed — exactly [Datagen.Churn]'s
   [touched_nodes]. Repair replays the frozen reorderings onto the
   churned kernel, re-evaluates that min/max for the damaged nodes
   only (over an incrementally maintained node -> interactions
   adjacency in final coordinates), and splices the memberships that
   actually moved back into the schedule.

   Supported chain shapes are those where every non-seed loop is a
   node loop adjacent to the seed whose growth connectivity is the
   interaction access itself (backward: successors of a node = the
   transpose rows; forward: predecessors = the same rows) — which is
   all four bundled kernels. [prepare] verifies this against the
   kernel's own chain rather than trusting the shape. *)

open Reorder

let invalid fmt = Fmt.kstr invalid_arg fmt

let c_rounds = Rtrt_obs.Metrics.counter "repair.rounds"
let c_fallbacks = Rtrt_obs.Metrics.counter "repair.fallbacks_cold"
let c_nodes = Rtrt_obs.Metrics.counter "repair.nodes_recomputed"
let c_moves = Rtrt_obs.Metrics.counter "repair.tiles_moved"
let c_edges = Rtrt_obs.Metrics.counter "repair.damaged_edges"
let c_cache_replays = Rtrt_obs.Metrics.counter "repair.cache_replays"
let g_seconds = Rtrt_obs.Metrics.gauge "repair.last_seconds"
let g_modeled = Rtrt_obs.Metrics.gauge "repair.last_modeled_seconds"

(* Everything below never changes across repair rounds (until a cold
   fallback re-seeds the whole state). *)
type frozen = {
  plan : Plan.t;
  strategy : Inspector.strategy;
  share_symmetric_deps : bool;
  sigma : Perm.t;
  delta : Perm.t;
  sigma_fwd : int array; (* forward array of [sigma]; not a copy *)
  delta_fwd : int array;
  fns : (string * Perm.t) list;
  kernel_name : string;
  n_nodes : int;
  n_inter : int;
  loop_sizes : int array;
  seed_loop : int;
  (* Tiling plans only: the frozen seed tile function in final
     (post-delta) interaction coordinates, and the tile count. *)
  seed_tile_of : int array option;
  n_tiles : int;
}

type state = {
  mutable f : frozen;
  mutable support : (unit, string) result;
  mutable sched : Schedule.t option;
  (* tiles.(l).(i) = current tile of iteration [i] of loop [l], final
     coordinates; mirrors [sched]. Empty when not tiling. *)
  mutable tiles : int array array;
  (* adj.(v) = interactions (final coords) incident on node [v] (final
     coords), with multiplicity; mirrors the *current* churned access.
     Empty when the incremental path is unsupported. *)
  mutable adj : int list array;
  mutable cold_seconds : float;
  (* Machine calibration for the cost model: seconds per access touch
     of inspector-style work, and the measured (or initially modeled)
     cost of one frozen-perm replay. *)
  mutable unit_cost : float;
  mutable replay_est : float;
}

type info = {
  fell_back : bool;
  fallback_reason : string option;
  cache_replayed : bool;
  damaged_edges : int;
  damaged_nodes : int;
  nodes_recomputed : int;
  tiles_moved : int;
  seconds : float;
  modeled_repair_seconds : float;
  cold_seconds_ref : float;
  verified : bool option;
}

let supported state = state.support
let schedule state = state.sched

(* ---- prepare ------------------------------------------------------ *)

let arrays_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
  go (Array.length a - 1)

(* Why every [repair] on this state will take the cold path, or [Ok]
   if the incremental path applies. [trans] is the transpose of the
   final access (computed by the caller, reused for the adjacency). *)
let compute_support plan (k : Kernels.Kernel.t) sched ~trans =
  let tiling =
    List.find_map
      (function
        | Transform.Sparse_tile { growth; _ } -> Some growth | _ -> None)
      (Plan.transforms plan)
  in
  match (tiling, sched) with
  | None, None -> Ok () (* pure replay: nothing grows, nothing splices *)
  | None, Some _ | Some _, None ->
    invalid "Repair.prepare: plan and result disagree about sparse tiling"
  | Some Transform.Cache_block, Some _ ->
    Error "cache-block growth is not incrementally repairable"
  | Some Transform.Full, Some sched ->
    let n_loops = Array.length k.Kernels.Kernel.loop_sizes in
    let seed = k.Kernels.Kernel.seed_loop in
    if Schedule.n_loops sched <> n_loops then
      Error "schedule does not match the kernel chain (time-tiled?)"
    else begin
      let bad = ref None in
      for l = 0 to n_loops - 1 do
        if
          l <> seed
          && (abs (l - seed) <> 1
             || k.Kernels.Kernel.loop_sizes.(l) <> k.Kernels.Kernel.n_nodes)
        then bad := Some l
      done;
      match !bad with
      | Some l ->
        Error (Fmt.str "loop %d is not a seed-adjacent node loop" l)
      | None ->
        (* Trust nothing about the chain shape: the per-node min/max
           rule is only the growth rule if the chain's connectivities
           for the adjacent loops are the access and its transpose. *)
        let access = k.Kernels.Kernel.access in
        let chain = k.Kernels.Kernel.chain_of_access access in
        let conn_is c (a : Access.t) =
          arrays_equal c.Access.ptr a.Access.ptr
          && arrays_equal c.Access.dat a.Access.dat
        in
        let back_ok =
          seed = 0 || conn_is chain.Sparse_tile.conn.(seed - 1) access
        in
        let fwd_ok =
          seed = n_loops - 1 || conn_is chain.Sparse_tile.conn.(seed) trans
        in
        if not back_ok then
          Error "backward connectivity is not the interaction access"
        else if not fwd_ok then
          Error "forward connectivity is not the access transpose"
        else Ok ()
    end

(* Rebuild the mutable half of the state from an inspection result
   (used by [prepare] and after every cold fallback). *)
let reset state (result : Inspector.result) =
  let k = result.Inspector.kernel in
  let trans = Access.transpose k.Kernels.Kernel.access in
  let support =
    compute_support state.f.plan k result.Inspector.schedule ~trans
  in
  let seed_tile_of, n_tiles, tiles, sched =
    match result.Inspector.schedule with
    | None -> (None, 0, [||], None)
    | Some sched ->
      let n_loops = Schedule.n_loops sched in
      let n_tiles = Schedule.n_tiles sched in
      let items = Schedule.flat_items sched in
      let tiles =
        Array.init n_loops (fun l ->
            Array.make k.Kernels.Kernel.loop_sizes.(l) 0)
      in
      for t = 0 to n_tiles - 1 do
        for l = 0 to n_loops - 1 do
          let lo, hi = Schedule.row sched ~tile:t ~loop:l in
          for p = lo to hi - 1 do
            tiles.(l).(items.(p)) <- t
          done
        done
      done;
      (Some (Array.copy tiles.(k.Kernels.Kernel.seed_loop)), n_tiles, tiles,
       Some sched)
  in
  let adj =
    match support with
    | Error _ -> [||]
    | Ok () ->
      if sched = None then [||]
      else
        Array.init (Access.n_iter trans) (fun v ->
            Access.fold_touches trans v (fun acc j -> j :: acc) []
            |> List.rev)
  in
  let n_touches = Access.n_touches k.Kernels.Kernel.access in
  let sched_items =
    match sched with Some s -> Schedule.total_iterations s | None -> 0
  in
  let cold = result.Inspector.inspector_seconds in
  let unit_cost = cold /. float_of_int ((4 * n_touches) + sched_items + 1) in
  state.f <- { state.f with seed_tile_of; n_tiles };
  state.support <- support;
  state.sched <- sched;
  state.tiles <- tiles;
  state.adj <- adj;
  state.cold_seconds <- cold;
  state.unit_cost <- unit_cost;
  (* First-round estimate: a replay touches each access item about
     twice (index adjust + data remap); replaced by a measurement
     after the first incremental round. *)
  state.replay_est <- unit_cost *. float_of_int (2 * n_touches)

let prepare ?(strategy = Inspector.Remap_once) ?(share_symmetric_deps = true)
    plan (result : Inspector.result) =
  let k = result.Inspector.kernel in
  let f =
    {
      plan;
      strategy;
      share_symmetric_deps;
      sigma = result.Inspector.sigma_total;
      delta = result.Inspector.delta_total;
      sigma_fwd = Perm.to_forward_array result.Inspector.sigma_total;
      delta_fwd = Perm.to_forward_array result.Inspector.delta_total;
      fns = result.Inspector.reordering_fns;
      kernel_name = k.Kernels.Kernel.name;
      n_nodes = k.Kernels.Kernel.n_nodes;
      n_inter = k.Kernels.Kernel.n_inter;
      loop_sizes = Array.copy k.Kernels.Kernel.loop_sizes;
      seed_loop = k.Kernels.Kernel.seed_loop;
      seed_tile_of = None;
      n_tiles = 0;
    }
  in
  let state =
    {
      f;
      support = Ok ();
      sched = None;
      tiles = [||];
      adj = [||];
      cold_seconds = 0.;
      unit_cost = 0.;
      replay_est = 0.;
    }
  in
  reset state result;
  state

(* ---- the frozen replay -------------------------------------------- *)

let check_kernel state (kernel : Kernels.Kernel.t) =
  let f = state.f in
  if
    kernel.Kernels.Kernel.name <> f.kernel_name
    || kernel.Kernels.Kernel.n_nodes <> f.n_nodes
    || kernel.Kernels.Kernel.n_inter <> f.n_inter
    || not (arrays_equal kernel.Kernels.Kernel.loop_sizes f.loop_sizes)
  then
    invalid "Repair: kernel %s (%d nodes, %d inter) does not match state (%s)"
      kernel.Kernels.Kernel.name kernel.Kernels.Kernel.n_nodes
      kernel.Kernels.Kernel.n_inter f.kernel_name

(* Exactly what [Inspector.replay] does with a cache entry: the
   churned kernel under the frozen composed reorderings. *)
let replay state (kernel : Kernels.Kernel.t) =
  let f = state.f in
  let kernel = kernel.Kernels.Kernel.copy () in
  let k = kernel.Kernels.Kernel.apply_iter_perm f.delta in
  if Perm.is_id f.sigma then (k, 0)
  else (k.Kernels.Kernel.apply_data_perm f.sigma, 1)

let result_of state ~kernel ~sched ~remaps ~seconds =
  let f = state.f in
  {
    Inspector.kernel;
    schedule = sched;
    sigma_total = f.sigma;
    delta_total = f.delta;
    inspector_seconds = seconds;
    n_data_remaps = remaps;
    reordering_fns = f.fns;
    shape_summary =
      Option.map (fun s -> Shape.summary (Shape.analyze s)) sched;
  }

(* ---- regrow: the bit-identity reference --------------------------- *)

let regrow ?pool state (kernel : Kernels.Kernel.t) =
  check_kernel state kernel;
  let pool =
    match pool with
    | Some p when Rtrt_par.Pool.size p > 1 -> Some p
    | _ -> None
  in
  let f = state.f in
  let t0 = Rtrt_obs.Clock.now_s () in
  let k, remaps = replay state kernel in
  let sched =
    match f.seed_tile_of with
    | None -> None
    | Some tile_of ->
      let chain = k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access in
      let seed_tiles = { Sparse_tile.n_tiles = f.n_tiles; tile_of } in
      let tiles =
        match pool with
        | Some pool ->
          Sparse_tile.full
            ~grow_backward:(Rtrt_par.Inspect.grow_backward ~pool)
            ~grow_forward:(Rtrt_par.Inspect.grow_forward ~pool)
            ~chain ~seed:f.seed_loop ~seed_tiles ()
        | None ->
          Sparse_tile.full ~grow_backward:Sparse_tile.grow_backward_scatter
            ~chain ~seed:f.seed_loop ~seed_tiles ()
      in
      Some (Schedule.of_tile_fns tiles)
  in
  let seconds = Rtrt_obs.Clock.now_s () -. t0 in
  result_of state ~kernel:k ~sched ~remaps ~seconds

(* ---- fingerprint -------------------------------------------------- *)

(* The cold ingredients of the churned kernel and plan, plus the
   repair tag and the frozen state the spliced schedule is a function
   of: (sigma, delta) and the seed tiling. Distinct from the cold
   fingerprint of the same pair by the tag alone; including the frozen
   bits keeps two states (different pre-churn histories) that arrive
   at the same churned kernel from colliding. *)
let fingerprint state (kernel : Kernels.Kernel.t) =
  let f = state.f in
  let module F = Rtrt_plancache.Fingerprint in
  let b = F.create () in
  F.add_string b "repair";
  F.add_string b kernel.Kernels.Kernel.name;
  F.add_int b kernel.Kernels.Kernel.n_nodes;
  F.add_int b kernel.Kernels.Kernel.n_inter;
  F.add_int_array b kernel.Kernels.Kernel.loop_sizes;
  F.add_int b kernel.Kernels.Kernel.seed_loop;
  let access = kernel.Kernels.Kernel.access in
  F.add_int_array b access.Access.ptr;
  F.add_int_array b access.Access.dat;
  List.iter
    (fun t -> F.add_string b (Fmt.str "%a" Transform.pp t))
    (Plan.transforms f.plan);
  F.add_bool b f.share_symmetric_deps;
  F.add_int_array b f.sigma_fwd;
  F.add_int_array b f.delta_fwd;
  (match f.seed_tile_of with
  | None -> F.add_int b (-1)
  | Some tf ->
    F.add_int b f.n_tiles;
    F.add_int_array b tf);
  F.value b

(* ---- repair ------------------------------------------------------- *)

(* One occurrence only: adjacency rows carry multiplicity. *)
let remove_one x row =
  let rec go = function
    | [] ->
      invalid "Repair: damage removes interaction %d not incident on node" x
    | y :: tl -> if y = x then tl else y :: go tl
  in
  go row

let repair ?cache ?pool ?(policy = `Auto) ?(verify = false) state
    (kernel : Kernels.Kernel.t) ~(damage : Datagen.Churn.damage) =
  check_kernel state kernel;
  Rtrt_obs.Metrics.incr c_rounds;
  let f = state.f in
  let damaged_edges = Array.length damage.Datagen.Churn.rewired in
  let damaged_nodes = Array.length damage.Datagen.Churn.touched_nodes in
  Rtrt_obs.Metrics.add c_edges damaged_edges;
  (* Cost model: the incremental path pays one frozen replay plus
     inspector-style work proportional to the dependence touches of
     the damaged nodes (adjacency maintenance, the min/max
     re-evaluations per non-seed loop, and the splice row rebuilds). *)
  let n_loops = Array.length f.loop_sizes in
  let touched_work =
    if Array.length state.adj = 0 then 0
    else
      Array.fold_left
        (fun acc v -> acc + List.length state.adj.(f.sigma_fwd.(v)))
        0 damage.Datagen.Churn.touched_nodes
      * (n_loops - 1)
  in
  let modeled =
    state.replay_est +. (float_of_int touched_work *. state.unit_cost)
  in
  Rtrt_obs.Metrics.set g_modeled modeled;
  let damage_frac =
    Datagen.Churn.damage_fraction damage ~m:f.n_inter
  in
  let fallback_reason =
    match (policy, state.support) with
    | _, Error reason -> Some reason
    | `Cold, _ -> Some "policy `Cold"
    | `Repair, _ -> None
    | `Auto, _ ->
      if damage_frac > 0.35 then
        Some (Fmt.str "damage fraction %.2f past threshold" damage_frac)
      else if state.cold_seconds > 0. && modeled >= 0.9 *. state.cold_seconds
      then Some "modeled repair not cheaper than cold inspection"
      else None
  in
  match fallback_reason with
  | Some reason ->
    Rtrt_obs.Metrics.incr c_fallbacks;
    let cold_ref = state.cold_seconds in
    let t0 = Rtrt_obs.Clock.now_s () in
    let result =
      Inspector.run ?cache ?pool ~strategy:f.strategy
        ~share_symmetric_deps:f.share_symmetric_deps f.plan kernel
    in
    let seconds = Rtrt_obs.Clock.now_s () -. t0 in
    Rtrt_obs.Metrics.set g_seconds seconds;
    (* Re-seed: the fresh reorderings become the frozen ones and later
       rounds repair incrementally again. *)
    state.f <-
      {
        f with
        sigma = result.Inspector.sigma_total;
        delta = result.Inspector.delta_total;
        sigma_fwd = Perm.to_forward_array result.Inspector.sigma_total;
        delta_fwd = Perm.to_forward_array result.Inspector.delta_total;
        fns = result.Inspector.reordering_fns;
      };
    reset state result;
    ( result,
      {
        fell_back = true;
        fallback_reason = Some reason;
        cache_replayed = false;
        damaged_edges;
        damaged_nodes;
        nodes_recomputed = 0;
        tiles_moved = 0;
        seconds;
        modeled_repair_seconds = modeled;
        cold_seconds_ref = cold_ref;
        verified = None;
      } )
  | None ->
    let cold_ref = state.cold_seconds in
    let t0 = Rtrt_obs.Clock.now_s () in
    let k, remaps = replay state kernel in
    let t_replay = Rtrt_obs.Clock.now_s () -. t0 in
    (* Adjacency maintenance, in final coordinates. Churn reports old
       and new endpoints in original coordinates; the frozen forward
       arrays carry both sides over. *)
    let moves = ref [] in
    let n_moves = ref 0 in
    let recomputed = ref 0 in
    let sched' =
      match state.sched with
      | None -> None
      | Some sched ->
        Array.iter
          (fun (j, (ol, or_), (nl, nr)) ->
            let j' = f.delta_fwd.(j) in
            let ol = f.sigma_fwd.(ol) and or_ = f.sigma_fwd.(or_) in
            let nl = f.sigma_fwd.(nl) and nr = f.sigma_fwd.(nr) in
            state.adj.(ol) <- remove_one j' state.adj.(ol);
            state.adj.(or_) <- remove_one j' state.adj.(or_);
            state.adj.(nl) <- j' :: state.adj.(nl);
            state.adj.(nr) <- j' :: state.adj.(nr))
          damage.Datagen.Churn.rewired;
        (* Re-evaluate growth for the damaged nodes only: backward
           loops take the min seed tile over the incident
           interactions, forward loops the max; a node with no
           incident interactions is dependence-free and goes to tile
           0 (exactly [grow_backward]/[grow_forward]'s rule). *)
        let seed_tile =
          match f.seed_tile_of with Some t -> t | None -> assert false
        in
        let grow_of adj_row ~backward =
          match adj_row with
          | [] -> 0
          | j :: rest ->
            List.fold_left
              (fun acc j ->
                if backward then min acc seed_tile.(j)
                else max acc seed_tile.(j))
              seed_tile.(j) rest
        in
        Array.iter
          (fun v0 ->
            let v = f.sigma_fwd.(v0) in
            let row = state.adj.(v) in
            for l = 0 to n_loops - 1 do
              if l <> f.seed_loop then begin
                incr recomputed;
                let t_new = grow_of row ~backward:(l < f.seed_loop) in
                let t_old = state.tiles.(l).(v) in
                if t_new <> t_old then begin
                  state.tiles.(l).(v) <- t_new;
                  moves := (l, v, t_old, t_new) :: !moves;
                  incr n_moves
                end
              end
            done)
          damage.Datagen.Churn.touched_nodes;
        Some (Schedule.splice sched ~moves:(Array.of_list !moves))
    in
    state.sched <- sched';
    let seconds () = Rtrt_obs.Clock.now_s () -. t0 in
    let result = result_of state ~kernel:k ~sched:sched' ~remaps
        ~seconds:(seconds ())
    in
    Rtrt_obs.Metrics.add c_nodes !recomputed;
    Rtrt_obs.Metrics.add c_moves !n_moves;
    (* The replay cost is a pure function of the (fixed) dataset size,
       so keep the cheapest measurement: a one-off GC pause or
       first-touch spike must not stick in the model and flip `Auto to
       cold on later rounds. *)
    state.replay_est <-
      (if state.replay_est > 0. then Float.min state.replay_est t_replay
       else t_replay);
    (* Cache: repaired results live under their own key; a hit must
       agree bit for bit with what we just spliced (the entry is a
       pure function of the fingerprint ingredients), and a miss
       stores for the next process. *)
    let cache_replayed =
      match cache with
      | None -> false
      | Some cache -> (
        let key = fingerprint state kernel in
        match
          Rtrt_plancache.Cache.find cache ~key
            ~n_data:kernel.Kernels.Kernel.n_nodes
            ~n_iter:kernel.Kernels.Kernel.n_inter
            ~loop_sizes:kernel.Kernels.Kernel.loop_sizes
        with
        | Some entry ->
          let sched_agrees =
            match (entry.Rtrt_plancache.Cache.schedule, sched') with
            | None, None -> true
            | Some a, Some b -> Schedule.equal a b
            | _ -> false
          in
          if
            not
              (Perm.equal entry.Rtrt_plancache.Cache.sigma_total f.sigma
              && Perm.equal entry.Rtrt_plancache.Cache.delta_total f.delta
              && sched_agrees)
          then invalid "Repair: spliced result disagrees with cached entry";
          Rtrt_obs.Metrics.incr c_cache_replays;
          true
        | None ->
          Rtrt_plancache.Cache.store cache ~key
            {
              Rtrt_plancache.Cache.sigma_total = f.sigma;
              delta_total = f.delta;
              schedule = sched';
              shape_summary = result.Inspector.shape_summary;
              reordering_fns = f.fns;
              n_data_remaps = remaps;
              cold_inspector_seconds = result.Inspector.inspector_seconds;
            };
          false)
    in
    let verified =
      if not verify then None
      else begin
        let reference = regrow ?pool state kernel in
        let sched_ok =
          match (sched', reference.Inspector.schedule) with
          | None, None -> true
          | Some a, Some b -> Schedule.equal a b
          | _ -> false
        in
        let legal_ok =
          match sched' with
          | None -> true
          | Some _ ->
            let chain =
              k.Kernels.Kernel.chain_of_access k.Kernels.Kernel.access
            in
            let tiles =
              Array.map
                (fun tile_of -> { Sparse_tile.n_tiles = f.n_tiles; tile_of })
                state.tiles
            in
            Sparse_tile.check_legality ~chain ~tiles = []
        in
        Some (sched_ok && legal_ok)
      end
    in
    (match verified with
    | Some false -> invalid "Repair: spliced schedule differs from regrowth"
    | _ -> ());
    let seconds = seconds () in
    Rtrt_obs.Metrics.set g_seconds seconds;
    ( { result with Inspector.inspector_seconds = seconds },
      {
        fell_back = false;
        fallback_reason = None;
        cache_replayed;
        damaged_edges;
        damaged_nodes;
        nodes_recomputed = !recomputed;
        tiles_moved = !n_moves;
        seconds;
        modeled_repair_seconds = modeled;
        cold_seconds_ref = cold_ref;
        verified;
      } )

let pp_info ppf i =
  Fmt.pf ppf
    "@[<v>path: %s%a@,damage: %d edges, %d nodes@,\
     recomputed %d growths, moved %d memberships@,\
     %.3f ms (modeled %.3f ms, cold ref %.3f ms)%a%a@]"
    (if i.fell_back then "cold fallback" else "incremental repair")
    (fun ppf -> function
      | Some r -> Fmt.pf ppf " (%s)" r
      | None -> ())
    i.fallback_reason i.damaged_edges i.damaged_nodes i.nodes_recomputed
    i.tiles_moved (i.seconds *. 1e3)
    (i.modeled_repair_seconds *. 1e3)
    (i.cold_seconds_ref *. 1e3)
    (fun ppf replayed ->
      if replayed then Fmt.pf ppf "@,cache: replayed stored repair")
    i.cache_replayed
    (fun ppf -> function
      | Some true -> Fmt.pf ppf "@,verified against regrowth"
      | Some false -> Fmt.pf ppf "@,VERIFY FAILED"
      | None -> ())
    i.verified
