(* The run-time counterpart of a data mapping M_{I->a}: for each
   iteration of one loop, the list of locations it touches in one data
   space, stored CSR-style in touch order. Run-time data-reordering
   inspectors traverse exactly this structure. *)

type t = {
  n_iter : int;
  n_data : int;
  ptr : int array; (* length n_iter + 1 *)
  dat : int array; (* touched locations, grouped by iteration *)
}

let invalid fmt = Fmt.kstr invalid_arg fmt

let n_iter a = a.n_iter
let n_data a = a.n_data
let n_touches a = Array.length a.dat

(* Trusted constructor for inspector hot paths that build valid CSR
   arrays by construction (e.g. the pooled view materializer); skips
   the O(touches) validation of [make]. The arrays are not copied. *)
let unsafe_make ~n_iter ~n_data ~ptr ~dat = { n_iter; n_data; ptr; dat }

let make ~n_iter ~n_data ~ptr ~dat =
  if Array.length ptr <> n_iter + 1 then invalid "Access.make: ptr length";
  if ptr.(0) <> 0 || ptr.(n_iter) <> Array.length dat then
    invalid "Access.make: ptr endpoints";
  Array.iter
    (fun d -> if d < 0 || d >= n_data then invalid "Access.make: datum %d" d)
    dat;
  { n_iter; n_data; ptr; dat }

(* Each iteration touches exactly the pair (left.(j), right.(j)), in
   that order — the j loop of moldyn/nbf/irreg. *)
let of_pairs ~n_data left right =
  let n_iter = Array.length left in
  if Array.length right <> n_iter then invalid "Access.of_pairs: lengths";
  let ptr = Array.init (n_iter + 1) (fun j -> 2 * j) in
  let dat = Array.make (2 * n_iter) 0 in
  for j = 0 to n_iter - 1 do
    dat.(2 * j) <- left.(j);
    dat.((2 * j) + 1) <- right.(j)
  done;
  make ~n_iter ~n_data ~ptr ~dat

(* Each iteration touches one location given by [idx]. *)
let of_single ~n_data idx =
  let n_iter = Array.length idx in
  let ptr = Array.init (n_iter + 1) (fun j -> j) in
  make ~n_iter ~n_data ~ptr ~dat:(Array.copy idx)

(* Iteration i touches location i (the i and k loops of moldyn). *)
let identity n = of_single ~n_data:n (Array.init n (fun i -> i))

(* Two-pass builder with no intermediate lists: [fill it emit] must
   emit iteration [it]'s touches, the same multiset on both passes
   (pass one counts, pass two scatters straight into the CSR arrays).
   [sort_rows] additionally sorts each iteration's touches ascending
   in place. This is the inspector-hot-path replacement for
   [of_lists]. *)
let of_touches ?(sort_rows = false) ~n_iter ~n_data fill =
  let ptr = Array.make (n_iter + 1) 0 in
  for it = 0 to n_iter - 1 do
    let c = ref 0 in
    fill it (fun (_ : int) -> incr c);
    ptr.(it + 1) <- !c
  done;
  for it = 1 to n_iter do
    ptr.(it) <- ptr.(it) + ptr.(it - 1)
  done;
  let dat = Array.make ptr.(n_iter) 0 in
  let cursor = ref 0 in
  let bad = ref false in
  for it = 0 to n_iter - 1 do
    let stop = ptr.(it + 1) in
    fill it (fun d ->
        if !cursor >= stop then bad := true
        else begin
          dat.(!cursor) <- d;
          incr cursor
        end);
    if !cursor <> stop then bad := true;
    if sort_rows then Irgraph.Scratch.sort_range dat ~lo:ptr.(it) ~hi:stop
  done;
  if !bad then invalid "Access.of_touches: generator is not repeatable";
  make ~n_iter ~n_data ~ptr ~dat

let of_lists ~n_data lists =
  let n_iter = Array.length lists in
  let ptr = Array.make (n_iter + 1) 0 in
  for j = 0 to n_iter - 1 do
    ptr.(j + 1) <- ptr.(j) + List.length lists.(j)
  done;
  let dat = Array.make ptr.(n_iter) 0 in
  Array.iteri
    (fun j l -> List.iteri (fun k d -> dat.(ptr.(j) + k) <- d) l)
    lists;
  make ~n_iter ~n_data ~ptr ~dat

let touches a it = Array.sub a.dat a.ptr.(it) (a.ptr.(it + 1) - a.ptr.(it))

let iter_touches a it f =
  for idx = a.ptr.(it) to a.ptr.(it + 1) - 1 do
    f a.dat.(idx)
  done

let fold_touches a it f acc =
  let acc = ref acc in
  iter_touches a it (fun d -> acc := f !acc d);
  !acc

(* First location an iteration touches; raises for empty iterations. *)
let first_touch a it =
  if a.ptr.(it + 1) = a.ptr.(it) then invalid "Access.first_touch: empty"
  else a.dat.(a.ptr.(it))

(* Effect of a data reordering sigma: every touched location moves. *)
let map_data sigma a =
  if Perm.size sigma <> a.n_data then invalid "Access.map_data: size";
  { a with dat = Perm.remap_values sigma a.dat }

(* Effect of an iteration reordering delta: iteration delta(j) of the
   new access touches what iteration j touched. *)
let reorder_iters delta a =
  if Perm.size delta <> a.n_iter then invalid "Access.reorder_iters: size";
  let inv = Perm.to_inverse_array delta in
  let counts = Array.init a.n_iter (fun nw ->
      let old = inv.(nw) in
      a.ptr.(old + 1) - a.ptr.(old))
  in
  let ptr = Array.make (a.n_iter + 1) 0 in
  for j = 0 to a.n_iter - 1 do
    ptr.(j + 1) <- ptr.(j) + counts.(j)
  done;
  let dat = Array.make ptr.(a.n_iter) 0 in
  for nw = 0 to a.n_iter - 1 do
    let old = inv.(nw) in
    let len = a.ptr.(old + 1) - a.ptr.(old) in
    Array.blit a.dat a.ptr.(old) dat ptr.(nw) len
  done;
  { a with ptr; dat }

(* Re-embed the data space: same touches, locations shifted by
   [offset] into a space of [n_data] locations. Used to stack several
   arrays' access patterns into one combined space (e.g. for
   dependence classification across arrays). *)
let shift_data ~offset ~n_data a =
  if offset < 0 || n_data < offset + a.n_data then
    invalid "Access.shift_data: bad embedding";
  { a with n_data; dat = Array.map (fun d -> d + offset) a.dat }

(* Transpose: for each datum, the iterations that touch it, in
   ascending iteration order. Used to derive dependence connectivity
   (e.g. which j iterations read x.(i)). *)
let transpose a =
  let deg = Array.make a.n_data 0 in
  Array.iter (fun d -> deg.(d) <- deg.(d) + 1) a.dat;
  let ptr = Array.make (a.n_data + 1) 0 in
  for d = 0 to a.n_data - 1 do
    ptr.(d + 1) <- ptr.(d) + deg.(d)
  done;
  let dat = Array.make ptr.(a.n_data) 0 in
  let cursor = Array.copy ptr in
  for it = 0 to a.n_iter - 1 do
    iter_touches a it (fun d ->
        dat.(cursor.(d)) <- it;
        cursor.(d) <- cursor.(d) + 1)
  done;
  { n_iter = a.n_data; n_data = a.n_iter; ptr; dat }

(* Data-affinity graph: locations touched by the same iteration are
   adjacent (what Gpart partitions). *)
let to_graph a =
  let per_iter =
    Array.init a.n_iter (fun it -> touches a it)
  in
  Irgraph.Csr.of_accesses ~n_data:a.n_data per_iter

let pp ppf a =
  Fmt.pf ppf "access(%d iters -> %d locations, %d touches)" a.n_iter a.n_data
    (n_touches a)
