(** Sparse tiling (Section 2.3): iteration-reordering transformations
    whose inspectors traverse data dependences. Includes full sparse
    tiling (Strout et al.) and cache blocking (Douglas et al.). *)

type tile_fn = {
  n_tiles : int;
  tile_of : int array; (** iteration -> tile id *)
}

val tile_fn_of_partition : Irgraph.Partition.t -> tile_fn

(** Validate tile ids are in range. *)
val check_tile_fn : tile_fn -> unit

(** Backward growth: [conn] maps each iteration of the loop being
    assigned to its *successors* in the already-assigned loop; the
    result takes the min successor tile (dependence-free iterations go
    to tile 0). *)
val grow_backward : conn:Access.t -> next:tile_fn -> tile_fn

(** Backward growth walking only the predecessor set: scatter-min over
    the same edge multiset [grow_backward] would gather from the
    transposed connectivity, so bit-identical to
    [grow_backward ~conn:(Access.transpose conn) ~next] without
    materializing the transpose (the paper's symmetric-dependence
    elision, generalized to asymmetric chains).

    Precondition (the symmetric-dependence halving): [conn] here is
    the {e predecessor} connectivity — the chain's own
    [conn.(l)], mapping each already-assigned iteration of loop [l+1]
    to its predecessors in the loop being assigned — and it must carry
    the {e complete} dependence edge multiset between the two loops.
    That holds exactly when the forward and backward dependences
    between the loop pair are constrained by the same index arrays
    (a [Kernels.Kernel.symmetric_backward] pair, e.g. moldyn's
    force-scatter/velocity-gather both keyed by left/right), or when
    the chain is asymmetric but [conn.(l)] was built as the full
    transpose of the successor relation. If backward edges existed
    that are {e not} the transpose of [conn]'s rows, the scatter would
    never see them and the resulting tile function could violate
    them. {!Compose.Repair} relies on this precondition: under churn
    it re-runs growth per damaged iteration over the updated
    predecessor rows alone, which is only sound because those rows
    are the whole dependence set. *)
val grow_backward_scatter : conn:Access.t -> next:tile_fn -> tile_fn

(** Forward growth: [conn] maps each iteration to its *predecessors*;
    takes the max predecessor tile. *)
val grow_forward : conn:Access.t -> prev:tile_fn -> tile_fn

(** Bump the growth-pass observability counters exactly as the serial
    growers do; for substituted (pooled) growth implementations. *)
val count_growth : conn:Access.t -> int -> unit

(** Cache-blocking growth: keep the tile only when all predecessors
    agree (and none is the leftover), otherwise fall into the shared
    [leftover] tile (executed last). *)
val grow_cache_block : leftover:int -> conn:Access.t -> prev:tile_fn -> tile_fn

(** A chain of loops executed in sequence. [conn.(l)] maps each
    iteration of loop [l+1] to its predecessor iterations in loop [l]. *)
type chain = private {
  loop_sizes : int array;
  conn : Access.t array;
}

val n_loops : chain -> int

val make_chain : loop_sizes:int array -> conn:Access.t array -> chain

(** Full sparse tiling from a seed partitioning of loop [seed]; one
    tile function per loop, side-by-side growth (min backward, max
    forward). [shared_succ] supplies precomputed successor connectivity
    for backward loops (the Section 6 symmetric-dependence elision).
    [grow_backward]/[grow_forward] substitute the growth passes (e.g.
    {!grow_backward_scatter} or a pooled implementation); a substituted
    backward grower receives the *predecessor* connectivity
    [conn.(l)] directly and [shared_succ] is then unused. Substituted
    growers must be bit-identical to the defaults. *)
val full :
  ?shared_succ:(int * Access.t) list ->
  ?grow_backward:(conn:Access.t -> next:tile_fn -> tile_fn) ->
  ?grow_forward:(conn:Access.t -> prev:tile_fn -> tile_fn) ->
  chain:chain ->
  seed:int ->
  seed_tiles:tile_fn ->
  unit ->
  tile_fn array

(** Cache blocking: seed on loop 0, shrink forward, leftover tile
    last. *)
val cache_block : chain:chain -> seed_tiles:tile_fn -> tile_fn array

(** All dependence edges a -> b with tile(a) > tile(b); empty = legal. *)
val check_legality :
  chain:chain -> tiles:tile_fn array -> (int * int * int) list

val pp_tile_fn : tile_fn Fmt.t
