(* Schedule shape analysis for specialized executors (ROADMAP item 2 /
   the paper's "automatic generation of specialized executors" future
   work). A frozen flat-CSR schedule often has exploitable structure:
   after tilePack the identity-mapped loops' rows are literally
   [lo, lo+1, ..., hi], and even without it cpack/lexgroup leave long
   stretches where consecutive items differ by one. This module builds,
   once per schedule, a run-length index over the rows — maximal runs
   of consecutive integers — so executors can stream [for i = lo to hi]
   ranges instead of loading every iteration id through the indirection
   array.

   Soundness does not depend on any property of the items: maximal
   +1-runs reproduce the stored sequence exactly for *any* row content
   (a delta other than +1 simply ends the current run), so a
   run-streaming walk visits the same iterations in the same order as
   the element-at-a-time walk, bitwise. The payoff is merely
   proportional to the average run length. *)

type summary = {
  rows : int;            (* n_tiles * n_loops *)
  total_items : int;     (* Array.length items *)
  runs : int;            (* total maximal +1-runs across all rows *)
  identity_rows : int;   (* rows that are one single run (lo..hi) *)
  max_run : int;         (* length of the longest run *)
  single_loop : bool;    (* n_loops = 1 *)
  uniform_tile_items : int option; (* Some w if every tile holds w items *)
  avg_run_len : float;   (* total_items /. runs (0 when empty) *)
}

type t = {
  summary : summary;
  run_ptr : int array; (* length rows+1: row r's runs are run_ptr.(r)..run_ptr.(r+1)-1 *)
  run_lo : int array;  (* first iteration id of each run *)
  run_len : int array; (* length of each run, >= 1 *)
  src_items : int array;   (* the analyzed schedule's arrays, by identity: *)
  src_row_ptr : int array; (* a shape is only valid for that exact schedule *)
}

let c_analyses = Rtrt_obs.Metrics.counter "specialize.shape_analyses"

let summary t = t.summary
let run_ptr t = t.run_ptr
let run_lo t = t.run_lo
let run_len t = t.run_len

(* Physical identity on [items]: [remap_loop]/[permute_tiles] always
   allocate fresh arrays, so sharing the exact array (and row_ptr)
   pins the shape to the schedule value it was built from. *)
let for_schedule t s =
  t.src_items == Schedule.flat_items s && t.src_row_ptr == Schedule.row_ptr s

let analyze (s : Schedule.t) =
  let row_ptr = Schedule.row_ptr s in
  let items = Schedule.flat_items s in
  let n_loops = Schedule.n_loops s in
  let n_tiles = Schedule.n_tiles s in
  let rows = n_tiles * n_loops in
  (* Pass 1: count runs per row. *)
  let run_ptr = Array.make (rows + 1) 0 in
  for r = 0 to rows - 1 do
    let lo = row_ptr.(r) and hi = row_ptr.(r + 1) in
    let runs = ref (if hi > lo then 1 else 0) in
    for i = lo + 1 to hi - 1 do
      if items.(i) <> items.(i - 1) + 1 then incr runs
    done;
    run_ptr.(r + 1) <- run_ptr.(r) + !runs
  done;
  let n_runs = run_ptr.(rows) in
  let run_lo = Array.make n_runs 0 and run_len = Array.make n_runs 0 in
  (* Pass 2: fill, tracking the summary counters. *)
  let identity_rows = ref 0 and max_run = ref 0 in
  let k = ref 0 in
  for r = 0 to rows - 1 do
    let lo = row_ptr.(r) and hi = row_ptr.(r + 1) in
    if hi > lo then begin
      let start = ref lo in
      for i = lo + 1 to hi - 1 do
        if items.(i) <> items.(i - 1) + 1 then begin
          let len = i - !start in
          run_lo.(!k) <- items.(!start);
          run_len.(!k) <- len;
          if len > !max_run then max_run := len;
          incr k;
          start := i
        end
      done;
      let len = hi - !start in
      run_lo.(!k) <- items.(!start);
      run_len.(!k) <- len;
      if len > !max_run then max_run := len;
      incr k;
      if run_ptr.(r + 1) - run_ptr.(r) = 1 then incr identity_rows
    end
  done;
  assert (!k = n_runs);
  let uniform_tile_items =
    if n_tiles = 0 then None
    else begin
      let w = row_ptr.(n_loops) - row_ptr.(0) in
      let ok = ref true in
      for t = 1 to n_tiles - 1 do
        if row_ptr.((t + 1) * n_loops) - row_ptr.(t * n_loops) <> w then
          ok := false
      done;
      if !ok then Some w else None
    end
  in
  let total_items = Array.length items in
  let summary =
    {
      rows;
      total_items;
      runs = n_runs;
      identity_rows = !identity_rows;
      max_run = !max_run;
      single_loop = n_loops = 1;
      uniform_tile_items;
      avg_run_len =
        (if n_runs = 0 then 0. else float_of_int total_items /. float_of_int n_runs);
    }
  in
  Rtrt_obs.Metrics.incr c_analyses;
  { summary; run_ptr; run_lo; run_len; src_items = items; src_row_ptr = row_ptr }

(* When is run streaming worth dispatching to? The shaped walk trades
   one indirect load per element for two loads per run plus a tiny
   inner loop; below ~2 elements per run it is the same work with more
   branches. Identity-dominated schedules always profit. *)
let run_threshold = 2.0

let profitable (sm : summary) =
  sm.total_items > 0
  && (sm.avg_run_len >= run_threshold
     || sm.identity_rows * 2 >= sm.rows)

let summary_equal (a : summary) (b : summary) = a = b

let pp_summary ppf sm =
  Fmt.pf ppf
    "shape(%d rows, %d items, %d runs, avg %.1f, max %d, %d identity rows%s%s)"
    sm.rows sm.total_items sm.runs sm.avg_run_len sm.max_run sm.identity_rows
    (if sm.single_loop then ", single-loop" else "")
    (match sm.uniform_tile_items with
    | Some w -> Fmt.str ", uniform tiles of %d" w
    | None -> "")
