(* Tile packing (Section 2.3 / 5.4): after sparse tiling, reorder the
   data arrays by how tiles access them — consecutive packing over the
   tiled execution order. In the paper's Figure 5 this turns the data
   order into 4, 2, 5, 6, 3, 1 so the highlighted tile's data is
   consecutive.

   The inspector traverses the tiling function (via the schedule) and
   the data mappings of the listed loops, first-touch-packing each
   location the first time any iteration of any tile touches it. *)

let run ~(schedule : Schedule.t) ~(accesses : (int * Access.t) list) ~n_data =
  List.iter
    (fun (l, _) ->
      if l < 0 || l >= Schedule.n_loops schedule then
        invalid_arg "Tile_pack.run: loop out of range")
    accesses;
  let already_ordered = Array.make n_data false in
  let inv = Array.make n_data 0 in
  let count = ref 0 in
  let place loc =
    if not already_ordered.(loc) then begin
      inv.(!count) <- loc;
      already_ordered.(loc) <- true;
      incr count
    end
  in
  let rp = Schedule.row_ptr schedule and fl = Schedule.flat_items schedule in
  let nl = Schedule.n_loops schedule in
  for tile = 0 to Schedule.n_tiles schedule - 1 do
    List.iter
      (fun (loop, access) ->
        let r = (tile * nl) + loop in
        for i = rp.(r) to rp.(r + 1) - 1 do
          Access.iter_touches access fl.(i) place
        done)
      accesses
  done;
  for loc = 0 to n_data - 1 do
    place loc
  done;
  Perm.of_inverse inv
