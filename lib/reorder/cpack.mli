(** Consecutive packing (CPACK, Ding & Kennedy 1999): data-reordering
    inspector packing locations in first-touch order (Figure 10 of the
    paper). *)

(** [run access] traverses iterations in order and returns the data
    reordering sigma_cp. *)
val run : Access.t -> Perm.t

(** CPACK over an explicit iteration visit order (used by tilePack). *)
val run_in_order : Access.t -> order:int array -> Perm.t

(** CPACK over a fused-composition view of [base]: current iteration
    [cur] touches [sigma.(d)] for each datum [d] of base iteration
    [delta_inv.(cur)]. [order] optionally fixes the visit order over
    current iterations (default ascending). Bit-identical to {!run} /
    {!run_in_order} on the materialized access. *)
val run_view :
  ?order:int array -> Access.t -> sigma:int array -> delta_inv:int array ->
  Perm.t

(** Bump the run observability counters exactly as {!run} does; for
    substituted (pooled) CPACK implementations. [placed] is the number
    of first-touch placements. *)
val count_run : Access.t -> placed:int -> unit
