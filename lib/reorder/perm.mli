(** Permutations of [0, n): the run-time realization of reordering
    functions sigma (data) and delta (iteration).

    Convention: [forward old = new]. The paper's inspectors often build
    the inverse array ([sigma_inv.(new) = old]); use {!of_inverse} for
    those. *)

type t

val size : t -> int

(** Build from [forward.(old) = new]; validates bijectivity. *)
val of_forward : int array -> t

(** Build from [inv.(new) = old]; validates bijectivity. *)
val of_inverse : int array -> t

(** Trusted constructor (no validation); for inspectors whose output is
    a permutation by construction. The array is not copied. *)
val unsafe_of_forward : int array -> t

val id : int -> t
val is_id : t -> bool

(** New position of old index [i]. *)
val forward : t -> int -> int

(** Old position of new index [j] (allocates the inverse; hoist out of
    loops). *)
val backward : t -> int -> int

val invert : t -> t

(** [compose p2 p1] applies [p1] first. *)
val compose : t -> t -> t

(** [compose_into p2 acc] composes in place over a caller-owned
    forward accumulator (e.g. an [Irgraph.Scratch] backing store):
    [acc.(old) <- forward p2 acc.(old)] for the first [size p2] cells.
    No allocation; the walk-loop replacement for {!compose}. *)
val compose_into : t -> int array -> unit

(** [invert_into p dst] writes the inverse into the first [size p]
    cells of [dst]: [dst.(forward p i) = i]. No allocation. *)
val invert_into : t -> int array -> unit

(** Move values to their new positions: [(apply p a).(forward p i) = a.(i)]. *)
val apply_to_array : t -> 'a array -> 'a array

val apply_to_float_array : t -> float array -> float array

(** Remap index-array *values* after the pointed-to data moved:
    [new_idx.(k) = forward idx.(k)]. *)
val remap_values : t -> int array -> int array

val to_forward_array : t -> int array
val to_inverse_array : t -> int array
val equal : t -> t -> bool
val pp : t Fmt.t
