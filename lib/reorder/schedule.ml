(* Executor schedules for sparse-tiled loop chains: the run-time
   realization of sched(t, l) from Section 5.4. For each tile, for each
   loop of the chain, the member iterations in ascending (current)
   iteration order. The executor walks tiles outermost, loops within a
   tile, iterations within a loop — Figure 14's

     do t = 1, num_tiles
       do i4 in sched(t,1) ...
       do j4 in sched(t,2) ...
       do k4 in sched(t,3) ...  *)

type t = {
  n_tiles : int;
  n_loops : int;
  items : int array array array; (* items.(tile).(loop) = iterations *)
}

let invalid fmt = Fmt.kstr invalid_arg fmt

let n_tiles s = s.n_tiles
let n_loops s = s.n_loops
let items s ~tile ~loop = s.items.(tile).(loop)

let of_tile_fns (tiles : Sparse_tile.tile_fn array) =
  let n_loops = Array.length tiles in
  if n_loops = 0 then invalid "Schedule.of_tile_fns: no loops";
  let n_tiles = tiles.(0).Sparse_tile.n_tiles in
  Array.iter
    (fun (t : Sparse_tile.tile_fn) ->
      if t.Sparse_tile.n_tiles <> n_tiles then
        invalid "Schedule.of_tile_fns: inconsistent tile counts")
    tiles;
  let items =
    Array.init n_tiles (fun _ -> Array.make n_loops [||])
  in
  Array.iteri
    (fun l (tf : Sparse_tile.tile_fn) ->
      let counts = Array.make n_tiles 0 in
      Array.iter (fun t -> counts.(t) <- counts.(t) + 1) tf.Sparse_tile.tile_of;
      let arrays = Array.init n_tiles (fun t -> Array.make counts.(t) 0) in
      let cursor = Array.make n_tiles 0 in
      Array.iteri
        (fun it t ->
          arrays.(t).(cursor.(t)) <- it;
          cursor.(t) <- cursor.(t) + 1)
        tf.Sparse_tile.tile_of;
      Array.iteri (fun t a -> items.(t).(l) <- a) arrays)
    tiles;
  { n_tiles; n_loops; items }

(* Execution order of loop [l]'s iterations: the concatenation of its
   per-tile member lists. *)
let loop_order s l =
  let total =
    Array.fold_left (fun acc per_tile -> acc + Array.length per_tile.(l)) 0 s.items
  in
  let out = Array.make total 0 in
  let pos = ref 0 in
  Array.iter
    (fun per_tile ->
      let a = per_tile.(l) in
      Array.blit a 0 out !pos (Array.length a);
      pos := !pos + Array.length a)
    s.items;
  out

(* The iteration reordering delta induced on loop [l] by tiled
   execution: forward old_iter = position in the concatenated order. *)
let perm_of_loop s l =
  let order = loop_order s l in
  Perm.of_inverse order

(* Remap the iteration ids of [loop] through a permutation and keep
   each tile's member list ascending — how tilePack's data reordering
   renames the identity-mapped loops' iterations (T_{I3->I4}:
   i4 = tp(i3)). *)
let remap_loop s ~loop perm =
  let items =
    Array.map
      (fun per_tile ->
        Array.mapi
          (fun l a ->
            if l <> loop then a
            else begin
              let a' = Array.map (Perm.forward perm) a in
              Array.sort Stdlib.compare a';
              a'
            end)
          per_tile)
      s.items
  in
  { s with items }

(* Renumber tiles: new tile [t] is old tile [order.(t)]. Used by the
   parallel engine to make tile ids level-major, so that serial
   execution order of the result coincides with the per-level parallel
   order. [order] must be a permutation of [0, n_tiles). *)
let permute_tiles s ~order =
  if Array.length order <> s.n_tiles then
    invalid "Schedule.permute_tiles: order size %d <> %d tiles"
      (Array.length order) s.n_tiles;
  let seen = Array.make s.n_tiles false in
  Array.iter
    (fun t ->
      if t < 0 || t >= s.n_tiles || seen.(t) then
        invalid "Schedule.permute_tiles: order is not a permutation";
      seen.(t) <- true)
    order;
  { s with items = Array.map (fun t -> s.items.(t)) order }

(* Every iteration of every loop appears exactly once. *)
let check_coverage s ~loop_sizes =
  if Array.length loop_sizes <> s.n_loops then
    invalid "Schedule.check_coverage: loop count";
  let ok = ref true in
  Array.iteri
    (fun l size ->
      let seen = Array.make size 0 in
      Array.iter
        (fun per_tile -> Array.iter (fun it -> seen.(it) <- seen.(it) + 1) per_tile.(l))
        s.items;
      if not (Array.for_all (fun c -> c = 1) seen) then ok := false)
    loop_sizes;
  !ok

let total_iterations s =
  Array.fold_left
    (fun acc per_tile ->
      Array.fold_left (fun acc a -> acc + Array.length a) acc per_tile)
    0 s.items

let pp ppf s =
  Fmt.pf ppf "schedule(%d tiles x %d loops, %d iterations)" s.n_tiles s.n_loops
    (total_iterations s)
