(* Executor schedules for sparse-tiled loop chains: the run-time
   realization of sched(t, l) from Section 5.4. For each tile, for each
   loop of the chain, the member iterations in ascending (current)
   iteration order. The executor walks tiles outermost, loops within a
   tile, iterations within a loop — Figure 14's

     do t = 1, num_tiles
       do i4 in sched(t,1) ...
       do j4 in sched(t,2) ...
       do k4 in sched(t,3) ...

   Representation: flat CSR. Row [tile * n_loops + loop] of [items]
   spans [row_ptr.(row) .. row_ptr.(row + 1) - 1]; there is no per-tile
   or per-loop boxing, so the executor streams one contiguous int array
   front to back. A tile's rows are adjacent, so a whole tile's
   iterations occupy the contiguous block
   [row_ptr.(tile * n_loops) .. row_ptr.((tile + 1) * n_loops) - 1],
   which makes tile weights O(1) and tile renumbering a blit.

   Invariant (validated at construction, preserved by every operation
   here): [row_ptr] is monotone with row_ptr.(0) = 0 and final entry
   [Array.length items], and for each loop [l] the rows of [l] across
   all tiles partition [0, size_l) where size_l is the length of the
   tile function the loop was built from — provided [remap_loop] is
   only applied with a permutation of size size_l, which is what data
   reordering does. Executors re-check the cheap O(rows) consequence
   [check_fits] against their own loop sizes and may then stream with
   [Array.unsafe_get]. *)

type t = {
  n_tiles : int;
  n_loops : int;
  row_ptr : int array; (* length n_tiles * n_loops + 1 *)
  items : int array;   (* row tile*n_loops+loop = that loop's members *)
  (* Validation memos: the loop_sizes argument of the last successful
     [check_fits] / [check_coverage], so replaying a schedule out of
     the plan cache (the same entry object every hit) does not pay the
     O(rows) / O(iterations) scan again on every executor run. Reset
     by every transformation; a failed check is never memoized. *)
  mutable fits_ok : int array option;
  mutable coverage_ok : int array option;
}

let invalid fmt = Fmt.kstr invalid_arg fmt

let c_builds = Rtrt_obs.Metrics.counter "hotpath.schedule.builds"
let c_fits_skips = Rtrt_obs.Metrics.counter "plancache.schedule_check_skips"
let c_coverage_skips = Rtrt_obs.Metrics.counter "plancache.coverage_check_skips"

let n_tiles s = s.n_tiles
let n_loops s = s.n_loops
let row_ptr s = s.row_ptr
let flat_items s = s.items

(* Semantic equality: same tiling, same member order. The validation
   memos are deliberately ignored — whether a schedule has already
   been checked against some loop sizes is execution history, not
   identity (a cache-replayed schedule is validated on load, a fresh
   one only when first run). *)
let equal a b =
  a.n_tiles = b.n_tiles && a.n_loops = b.n_loops
  && a.row_ptr = b.row_ptr && a.items = b.items

let row s ~tile ~loop =
  if tile < 0 || tile >= s.n_tiles then invalid "Schedule.row: tile %d" tile;
  if loop < 0 || loop >= s.n_loops then invalid "Schedule.row: loop %d" loop;
  let r = (tile * s.n_loops) + loop in
  (s.row_ptr.(r), s.row_ptr.(r + 1))

(* Copying accessor for cold paths and tests; hot paths read [row_ptr]
   and [items] directly. *)
let items s ~tile ~loop =
  let lo, hi = row s ~tile ~loop in
  Array.sub s.items lo (hi - lo)

let of_tile_fns (tiles : Sparse_tile.tile_fn array) =
  let n_loops = Array.length tiles in
  if n_loops = 0 then invalid "Schedule.of_tile_fns: no loops";
  let n_tiles = tiles.(0).Sparse_tile.n_tiles in
  Array.iter
    (fun (t : Sparse_tile.tile_fn) ->
      if t.Sparse_tile.n_tiles <> n_tiles then
        invalid "Schedule.of_tile_fns: inconsistent tile counts")
    tiles;
  let n_rows = n_tiles * n_loops in
  let row_ptr = Array.make (n_rows + 1) 0 in
  (* Counting sort, pass 1: row lengths (shifted by one for the prefix
     sum), validating every tile id on the way — this is the
     "validated once" half of the validated-once-then-unsafe story. *)
  Array.iteri
    (fun l (tf : Sparse_tile.tile_fn) ->
      Array.iter
        (fun t ->
          if t < 0 || t >= n_tiles then
            invalid "Schedule.of_tile_fns: tile id %d out of range (loop %d)" t l;
          let r = (t * n_loops) + l in
          row_ptr.(r + 1) <- row_ptr.(r + 1) + 1)
        tf.Sparse_tile.tile_of)
    tiles;
  for r = 1 to n_rows do
    row_ptr.(r) <- row_ptr.(r) + row_ptr.(r - 1)
  done;
  let items = Array.make row_ptr.(n_rows) 0 in
  (* Pass 2: scatter. Scanning [tile_of] in ascending iteration order
     leaves every row ascending. *)
  let cursor = Array.copy row_ptr in
  Array.iteri
    (fun l (tf : Sparse_tile.tile_fn) ->
      Array.iteri
        (fun it t ->
          let r = (t * n_loops) + l in
          Array.unsafe_set items cursor.(r) it;
          cursor.(r) <- cursor.(r) + 1)
        tf.Sparse_tile.tile_of)
    tiles;
  Rtrt_obs.Metrics.incr c_builds;
  (* The counting sort just validated every tile id and scattered each
     iteration of each loop exactly once, so coverage for the loops'
     own sizes is proven by construction. *)
  let sizes =
    Array.map (fun (tf : Sparse_tile.tile_fn) -> Array.length tf.Sparse_tile.tile_of) tiles
  in
  { n_tiles; n_loops; row_ptr; items; fits_ok = None; coverage_ok = Some sizes }

(* Execution order of loop [l]'s iterations: the concatenation of its
   per-tile member lists. *)
let loop_order s l =
  if l < 0 || l >= s.n_loops then invalid "Schedule.loop_order: loop %d" l;
  let total = ref 0 in
  for t = 0 to s.n_tiles - 1 do
    let r = (t * s.n_loops) + l in
    total := !total + s.row_ptr.(r + 1) - s.row_ptr.(r)
  done;
  let out = Array.make !total 0 in
  let pos = ref 0 in
  for t = 0 to s.n_tiles - 1 do
    let r = (t * s.n_loops) + l in
    let lo = s.row_ptr.(r) and hi = s.row_ptr.(r + 1) in
    Array.blit s.items lo out !pos (hi - lo);
    pos := !pos + (hi - lo)
  done;
  out

(* The iteration reordering delta induced on loop [l] by tiled
   execution: forward old_iter = position in the concatenated order. *)
let perm_of_loop s l =
  let order = loop_order s l in
  Perm.of_inverse order

(* Remap the iteration ids of [loop] through a permutation and keep
   each tile's member list ascending — how tilePack's data reordering
   renames the identity-mapped loops' iterations (T_{I3->I4}:
   i4 = tp(i3)). Row lengths are unchanged, so [row_ptr] is shared. *)
let remap_loop s ~loop perm =
  if loop < 0 || loop >= s.n_loops then invalid "Schedule.remap_loop: loop %d" loop;
  let items = Array.copy s.items in
  for t = 0 to s.n_tiles - 1 do
    let r = (t * s.n_loops) + loop in
    let lo = s.row_ptr.(r) and hi = s.row_ptr.(r + 1) in
    for i = lo to hi - 1 do
      items.(i) <- Perm.forward perm items.(i)
    done;
    Irgraph.Scratch.sort_range items ~lo ~hi
  done;
  { s with items; fits_ok = None; coverage_ok = None }

(* Renumber tiles: new tile [t] is old tile [order.(t)]. Used by the
   parallel engine to make tile ids level-major, so that serial
   execution order of the result coincides with the per-level parallel
   order. [order] must be a permutation of [0, n_tiles). Each tile's
   iterations are one contiguous block, so this is a blit per tile. *)
let permute_tiles s ~order =
  if Array.length order <> s.n_tiles then
    invalid "Schedule.permute_tiles: order size %d <> %d tiles"
      (Array.length order) s.n_tiles;
  let seen = Array.make s.n_tiles false in
  Array.iter
    (fun t ->
      if t < 0 || t >= s.n_tiles || seen.(t) then
        invalid "Schedule.permute_tiles: order is not a permutation";
      seen.(t) <- true)
    order;
  let nl = s.n_loops in
  let n_rows = s.n_tiles * nl in
  let row_ptr = Array.make (n_rows + 1) 0 in
  let items = Array.make (Array.length s.items) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun t_new t_old ->
      let lo = s.row_ptr.(t_old * nl) and hi = s.row_ptr.((t_old + 1) * nl) in
      Array.blit s.items lo items !pos (hi - lo);
      let delta = !pos - lo in
      for l = 0 to nl - 1 do
        row_ptr.((t_new * nl) + l) <- s.row_ptr.((t_old * nl) + l) + delta
      done;
      pos := !pos + (hi - lo))
    order;
  row_ptr.(n_rows) <- !pos;
  { s with row_ptr; items; fits_ok = None; coverage_ok = None }

(* Move individual iterations between rows of the same loop without
   rebuilding the whole CSR from tile functions: the plan-repair path
   under graph churn, where only the iterations whose dependence
   neighborhoods changed can change tile. One linear pass allocates the
   new [items]/[row_ptr]; untouched rows are blitted, touched rows are
   rebuilt by a sorted merge of (old members minus leavers) with the
   joiners, so every row stays ascending exactly as [of_tile_fns]
   leaves it. Unlike [of_tile_fns] there is no per-item tile-id
   validation or counting sort over full tile functions — cost is
   O(total items) worth of blits plus O(row) merges for touched rows
   only, and the validation memos carry over: a splice moves members
   between rows of one loop, so per-loop totals (check_fits) and
   exactly-once coverage (check_coverage) are preserved. *)
let splice s ~moves =
  if Array.length moves = 0 then s
  else begin
    let nl = s.n_loops in
    let n_rows = s.n_tiles * nl in
    (* Per-row leaver/joiner lists, validated. *)
    let leavers = Array.make n_rows [] in
    let joiners = Array.make n_rows [] in
    let seen = Hashtbl.create (Array.length moves) in
    Array.iter
      (fun (loop, it, t_old, t_new) ->
        if loop < 0 || loop >= nl then
          invalid "Schedule.splice: loop %d" loop;
        if t_old < 0 || t_old >= s.n_tiles || t_new < 0 || t_new >= s.n_tiles
        then invalid "Schedule.splice: tile %d -> %d out of range" t_old t_new;
        if t_old = t_new then
          invalid "Schedule.splice: iteration %d does not move" it;
        if Hashtbl.mem seen (loop, it) then
          invalid "Schedule.splice: duplicate move for loop %d iteration %d"
            loop it;
        Hashtbl.add seen (loop, it) ();
        leavers.((t_old * nl) + loop) <- it :: leavers.((t_old * nl) + loop);
        joiners.((t_new * nl) + loop) <- it :: joiners.((t_new * nl) + loop))
      moves;
    let row_ptr = Array.make (n_rows + 1) 0 in
    for r = 0 to n_rows - 1 do
      let old_len = s.row_ptr.(r + 1) - s.row_ptr.(r) in
      let len =
        old_len - List.length leavers.(r) + List.length joiners.(r)
      in
      if len < 0 then invalid "Schedule.splice: row %d underflow" r;
      row_ptr.(r + 1) <- row_ptr.(r) + len
    done;
    let items = Array.make row_ptr.(n_rows) 0 in
    let sorted l = Array.of_list (List.sort_uniq compare l) in
    for r = 0 to n_rows - 1 do
      let lo = s.row_ptr.(r) and hi = s.row_ptr.(r + 1) in
      match (leavers.(r), joiners.(r)) with
      | [], [] -> Array.blit s.items lo (items : int array) row_ptr.(r) (hi - lo)
      | ls, js ->
        let ls = sorted ls and js = sorted js in
        let nls = Array.length ls and njs = Array.length js in
        (* Merge (old row minus leavers) with joiners; both ascending. *)
        let li = ref 0 and ji = ref 0 and out = ref row_ptr.(r) in
        for i = lo to hi - 1 do
          let it = s.items.(i) in
          if !li < nls && ls.(!li) = it then incr li
          else begin
            while !ji < njs && js.(!ji) < it do
              items.(!out) <- js.(!ji);
              incr out;
              incr ji
            done;
            items.(!out) <- it;
            incr out
          end
        done;
        while !ji < njs do
          items.(!out) <- js.(!ji);
          incr out;
          incr ji
        done;
        if !li <> nls then
          invalid "Schedule.splice: leaver absent from row %d" r;
        if !out <> row_ptr.(r + 1) then
          invalid "Schedule.splice: row %d length mismatch" r
    done;
    (* A splice permutes members between rows of one loop: per-loop
       totals and exactly-once coverage are invariant, so the proofs
       carry over. *)
    { s with row_ptr; items }
  end

let memo_hit memo sizes =
  match memo with Some m -> m = sizes | None -> false

(* Every iteration of every loop appears exactly once. *)
let check_coverage_scan s ~loop_sizes =
  let ok = ref true in
  Array.iteri
    (fun l size ->
      let seen = Array.make size 0 in
      (try
         for t = 0 to s.n_tiles - 1 do
           let r = (t * s.n_loops) + l in
           for i = s.row_ptr.(r) to s.row_ptr.(r + 1) - 1 do
             let it = s.items.(i) in
             if it < 0 || it >= size then raise Exit;
             seen.(it) <- seen.(it) + 1
           done
         done
       with Exit -> ok := false);
      if not (Array.for_all (fun c -> c = 1) seen) then ok := false)
    loop_sizes;
  !ok

let check_coverage s ~loop_sizes =
  if Array.length loop_sizes <> s.n_loops then
    invalid "Schedule.check_coverage: loop count";
  if memo_hit s.coverage_ok loop_sizes then begin
    Rtrt_obs.Metrics.incr c_coverage_skips;
    true
  end
  else begin
    let ok = check_coverage_scan s ~loop_sizes in
    if ok then s.coverage_ok <- Some (Array.copy loop_sizes);
    ok
  end

(* Cheap O(rows) executor guard: [loop_sizes] gives the iteration count
   of each chain position; a schedule whose [n_loops] is a multiple of
   the chain length (time-step tiling unrolls the chain) fits when the
   rows of loop [l] hold exactly [loop_sizes.(l mod chain)] iterations
   in total. Together with the construction invariant (each loop's rows
   partition [0, size_l)) this makes unsafe streaming over data arrays
   of those sizes sound. *)
let check_fits s ~loop_sizes =
  let k = Array.length loop_sizes in
  if k = 0 || s.n_loops mod k <> 0 then false
  else if memo_hit s.fits_ok loop_sizes then begin
    Rtrt_obs.Metrics.incr c_fits_skips;
    true
  end
  else begin
    let ok = ref true in
    for l = 0 to s.n_loops - 1 do
      let total = ref 0 in
      for t = 0 to s.n_tiles - 1 do
        let r = (t * s.n_loops) + l in
        total := !total + s.row_ptr.(r + 1) - s.row_ptr.(r)
      done;
      if !total <> loop_sizes.(l mod k) then ok := false
    done;
    if !ok then s.fits_ok <- Some (Array.copy loop_sizes);
    !ok
  end

let total_iterations s = Array.length s.items

let pp ppf s =
  Fmt.pf ppf "schedule(%d tiles x %d loops, %d iterations)" s.n_tiles s.n_loops
    (total_iterations s)
