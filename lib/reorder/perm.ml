(* Permutations of [0, n): the run-time realization of the reordering
   functions sigma (data) and delta (iteration) that inspectors
   generate and store in index arrays.

   Convention: [forward.(old_index) = new_index]. The paper's CPACK
   inspector builds the inverse array ([sigma_cp_inv.(new) = old]);
   {!of_inverse} accepts that form directly. *)

type t = { forward : int array }

let invalid fmt = Fmt.kstr invalid_arg fmt

let size p = Array.length p.forward

let check_bijection a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid "Perm: value %d out of range" v
      else if seen.(v) then invalid "Perm: value %d duplicated" v
      else seen.(v) <- true)
    a

let of_forward a =
  check_bijection a;
  { forward = Array.copy a }

let of_inverse inv =
  check_bijection inv;
  let n = Array.length inv in
  let forward = Array.make n 0 in
  for nw = 0 to n - 1 do
    forward.(inv.(nw)) <- nw
  done;
  { forward }

(* Trusted constructor for inspectors that build valid permutations by
   construction; only bounds are spot-checked in debug builds. *)
let unsafe_of_forward a = { forward = a }

let id n = { forward = Array.init n (fun i -> i) }
let is_id p = Array.for_all2 ( = ) p.forward (id (size p)).forward

let forward p i = p.forward.(i)

let invert p =
  let n = size p in
  let inv = Array.make n 0 in
  for i = 0 to n - 1 do
    inv.(p.forward.(i)) <- i
  done;
  { forward = inv }

let backward p j = (invert p).forward.(j)

(* [compose p2 p1] applies [p1] first: old -> p1 -> p2 -> new. *)
let compose p2 p1 =
  if size p2 <> size p1 then invalid "Perm.compose: size mismatch";
  { forward = Array.map (fun mid -> p2.forward.(mid)) p1.forward }

(* In-place composition over a caller-owned forward array (typically a
   Scratch-backed walk accumulator): acc.(old) <- p2(acc.(old)). Each
   cell is read once and written once, so no aliasing hazard arises
   from updating in place. *)
let compose_into p2 acc =
  let n = size p2 in
  if Array.length acc < n then invalid "Perm.compose_into: accumulator size";
  for i = 0 to n - 1 do
    let mid = Array.unsafe_get acc i in
    if mid < 0 || mid >= n then invalid "Perm.compose_into: value %d" mid;
    Array.unsafe_set acc i (Array.unsafe_get p2.forward mid)
  done

(* Inverse into a caller-owned destination (needs a second buffer: the
   scatter reads every source cell before its destination cell is
   known). Only the first [size p] cells of [dst] are written. *)
let invert_into p dst =
  let n = size p in
  if Array.length dst < n then invalid "Perm.invert_into: destination size";
  for i = 0 to n - 1 do
    Array.unsafe_set dst (Array.unsafe_get p.forward i) i
  done

(* Move each element to its new position: result.(forward i) = a.(i). *)
let apply_to_array p a =
  let n = size p in
  if Array.length a <> n then invalid "Perm.apply_to_array: length mismatch";
  let out = Array.make n a.(0) in
  for i = 0 to n - 1 do
    out.(p.forward.(i)) <- a.(i)
  done;
  out

let apply_to_float_array p a =
  let n = size p in
  if Array.length a <> n then invalid "Perm.apply_to_float_array: length";
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    out.(p.forward.(i)) <- a.(i)
  done;
  out

(* Remap the *values* of an index array after the data it points into
   has been reordered: new_idx.(k) = forward(idx.(k)). *)
let remap_values p idx = Array.map (fun v -> p.forward.(v)) idx

let to_forward_array p = Array.copy p.forward
let to_inverse_array p = (invert p).forward

let equal p1 p2 = size p1 = size p2 && Array.for_all2 ( = ) p1.forward p2.forward

let pp ppf p =
  if size p <= 16 then
    Fmt.pf ppf "perm[%a]" Fmt.(array ~sep:comma int) p.forward
  else Fmt.pf ppf "perm(n=%d)" (size p)
