(* Multilevel (METIS-style) partitioning as a run-time data reordering:
   like {!Gpart_reorder} but with the heavyweight partitioner — better
   cuts, higher inspector cost. Data within a part is numbered by a
   BFS over the part's subgraph (Gpart gets this for free from its
   BFS growth; a cut-optimizing partitioner must order explicitly),
   parts in part order. *)

let order_by_partition ~graph ~n_data partition =
  let members = Irgraph.Partition.members partition in
  let assign = Irgraph.Partition.assignment partition in
  let inv = Array.make n_data 0 in
  let pos = ref 0 in
  let placed = Array.make n_data false in
  let queue = Queue.create () in
  let place v =
    placed.(v) <- true;
    inv.(!pos) <- v;
    incr pos
  in
  Array.iteri
    (fun part_id part ->
      (* BFS within the part, restarting at unplaced members. *)
      Array.iter
        (fun root ->
          if not placed.(root) then begin
            place root;
            Queue.add root queue;
            while not (Queue.is_empty queue) do
              let v = Queue.pop queue in
              Irgraph.Csr.iter_neighbors graph v (fun w ->
                  if (not placed.(w)) && assign.(w) = part_id then begin
                    place w;
                    Queue.add w queue
                  end)
            done
          end)
        part)
    members;
  Perm.of_inverse inv

let run ?par ?graph (access : Access.t) ~part_size =
  let g = match graph with Some g -> g | None -> Access.to_graph access in
  let partition = Irgraph.Multilevel.partition_by_size ?par g ~part_size in
  order_by_partition ~graph:g ~n_data:(Access.n_data access) partition

let run_with_partition (access : Access.t) ~part_size =
  let g = Access.to_graph access in
  let partition = Irgraph.Multilevel.partition_by_size g ~part_size in
  (order_by_partition ~graph:g ~n_data:(Access.n_data access) partition, partition)
