(** Tile-level parallelism (Sections 2.3 / 4): levelize the tile
    dependence DAG of a sparse-tiled loop chain; independent tiles
    share a level and can run concurrently. *)

type t = {
  n_tiles : int;
  n_levels : int;
  level_of : int array;
  levels : int array array;
  tile_cost : int array; (** iterations per tile *)
}

(** Tile DAG edges induced by the chain's dependences, deduplicated
    and sorted ascending (by source, then destination). *)
val tile_edges :
  chain:Sparse_tile.chain ->
  tiles:Sparse_tile.tile_fn array ->
  (int * int) array

(** Levelize an explicit deduplicated edge array; raises
    [Invalid_argument] if an edge points from a later to an earlier
    tile, or if [tile_cost] does not have [n_tiles] entries. *)
val of_edges : n_tiles:int -> tile_cost:int array -> (int * int) array -> t

(** Levelize; raises [Invalid_argument] if the tiling is illegal
    (an edge from a later to an earlier tile). *)
val analyze :
  chain:Sparse_tile.chain -> tiles:Sparse_tile.tile_fn array -> t

val average_parallelism : t -> float

(** Same-level tile pairs whose interaction iterations touch a common
    datum (reduction conflicts a parallel runtime must combine); a
    lower bound — consecutive touchers per datum are compared. *)
val shared_data_conflicts :
  t -> access:Access.t -> tile_of_iter:int array -> int

(** Greedy list-scheduled makespan with barriers between levels. *)
val makespan : t -> processors:int -> int

val serial_cost : t -> int
val speedup : t -> processors:int -> float
val pp : t Fmt.t
