(** Run-length shape analysis over frozen flat-CSR schedules.

    Built once per schedule at plan time, a {!t} indexes every row's
    maximal runs of consecutive iteration ids so shaped executors can
    stream [for i = lo to hi] ranges instead of indirect loads. The
    run enumeration reproduces the stored item sequence exactly for
    any row content, so shaped walks are bitwise-identical to the
    interpreted walk by construction; profitability (not correctness)
    depends on {!summary} statistics. See README "Specialized
    executors". *)

type summary = {
  rows : int;  (** [n_tiles * n_loops] *)
  total_items : int;  (** schedule iterations *)
  runs : int;  (** maximal +1-runs across all rows *)
  identity_rows : int;  (** rows that are one single contiguous run *)
  max_run : int;  (** longest run length *)
  single_loop : bool;  (** [n_loops = 1] *)
  uniform_tile_items : int option;  (** [Some w] if every tile holds [w] items *)
  avg_run_len : float;  (** [total_items /. runs], 0 when empty *)
}

type t

val analyze : Schedule.t -> t
(** Two passes over [items]; O(total_items). *)

val summary : t -> summary

val run_ptr : t -> int array
(** Length [rows + 1]; row [r]'s runs span
    [run_ptr.(r) .. run_ptr.(r+1) - 1]. Do not mutate. *)

val run_lo : t -> int array
(** First iteration id of each run. Do not mutate. *)

val run_len : t -> int array
(** Length of each run (>= 1). Do not mutate. *)

val for_schedule : t -> Schedule.t -> bool
(** [true] iff the shape was built from exactly this schedule value
    (physical identity on its [items]/[row_ptr] arrays — every schedule
    transformation allocates fresh ones). Shaped executors must check
    this before streaming the run index with unsafe reads. *)

val profitable : summary -> bool
(** Whether dispatching to a run-streaming executor is expected to
    beat the element-at-a-time interpreted walk. *)

val summary_equal : summary -> summary -> bool
val pp_summary : summary Fmt.t
