(** Run-time counterpart of a data mapping [M_{I->a}]: per-iteration
    touched locations of one data space, CSR-style, in touch order.
    Data-reordering inspectors traverse exactly this structure. *)

type t = private {
  n_iter : int;
  n_data : int;
  ptr : int array;
  dat : int array;
}

val n_iter : t -> int
val n_data : t -> int

(** Total number of (iteration, location) touches. *)
val n_touches : t -> int

(** Raw constructor; validates CSR shape and location bounds. *)
val make : n_iter:int -> n_data:int -> ptr:int array -> dat:int array -> t

(** Trusted raw constructor (no validation, no copy); for inspector
    hot paths whose arrays are valid CSR by construction. *)
val unsafe_make :
  n_iter:int -> n_data:int -> ptr:int array -> dat:int array -> t

(** Iteration [j] touches [(left.(j), right.(j))] in that order (the j
    loop of moldyn/nbf/irreg). *)
val of_pairs : n_data:int -> int array -> int array -> t

(** Iteration [j] touches the single location [idx.(j)]. *)
val of_single : n_data:int -> int array -> t

(** Iteration [i] touches location [i]. *)
val identity : int -> t

val of_lists : n_data:int -> int list array -> t

(** [of_touches ~n_iter ~n_data fill] builds the mapping in two passes
    over the generator: [fill it emit] must emit iteration [it]'s
    touches identically on both passes (raises otherwise). No
    intermediate lists are allocated — the touches scatter straight
    into the CSR arrays. [sort_rows] sorts each iteration's touches
    ascending. *)
val of_touches :
  ?sort_rows:bool ->
  n_iter:int ->
  n_data:int ->
  (int -> (int -> unit) -> unit) ->
  t

val touches : t -> int -> int array
val iter_touches : t -> int -> (int -> unit) -> unit
val fold_touches : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

(** First location iteration [it] touches. *)
val first_touch : t -> int -> int

(** Effect of a data reordering sigma on the mapping ([R . M]). *)
val map_data : Perm.t -> t -> t

(** Effect of an iteration reordering delta ([M . T^-1]). *)
val reorder_iters : Perm.t -> t -> t

(** Same touches, locations shifted by [offset] into a larger space of
    [n_data] locations (stacking several arrays into one space). *)
val shift_data : offset:int -> n_data:int -> t -> t

(** For each datum, the iterations touching it (ascending). *)
val transpose : t -> t

(** Data-affinity graph: locations co-touched by an iteration are
    adjacent. *)
val to_graph : t -> Irgraph.Csr.t

val pp : t Fmt.t
