(* Lexicographical grouping (Ding & Kennedy): iteration-reordering
   inspector that groups iterations by the first data location they
   touch, preserving the original order within a group. After a data
   reordering, iterations touching the same or adjacent locations then
   execute consecutively (Figure 4 of the paper).

   Implemented as a stable counting sort keyed on the first touch,
   which is O(n_iter + n_data). Returns delta_lg with
   [Perm.forward delta old_iter = new_iter]. *)

let run (access : Access.t) =
  let n_iter = Access.n_iter access in
  let n_data = Access.n_data access in
  let key = Array.init n_iter (fun it -> Access.first_touch access it) in
  let count = Array.make (n_data + 1) 0 in
  Array.iter (fun k -> count.(k + 1) <- count.(k + 1) + 1) key;
  for d = 0 to n_data - 1 do
    count.(d + 1) <- count.(d + 1) + count.(d)
  done;
  let forward = Array.make n_iter 0 in
  for it = 0 to n_iter - 1 do
    let k = key.(it) in
    forward.(it) <- count.(k);
    count.(k) <- count.(k) + 1
  done;
  Perm.unsafe_of_forward forward

(* lexGroup over a fused-composition view: current iteration [cur]'s
   key is the current position of the first location base iteration
   [delta_inv.(cur)] touches, i.e. [sigma.(first_touch base
   delta_inv.(cur))]. Bit-identical to [run] on the materialized
   access (the counting sort sees the same key sequence). *)
let run_view (base : Access.t) ~(sigma : int array) ~(delta_inv : int array) =
  let n_iter = Access.n_iter base in
  let n_data = Access.n_data base in
  let key =
    Array.init n_iter (fun cur -> sigma.(Access.first_touch base delta_inv.(cur)))
  in
  let count = Array.make (n_data + 1) 0 in
  Array.iter (fun k -> count.(k + 1) <- count.(k + 1) + 1) key;
  for d = 0 to n_data - 1 do
    count.(d + 1) <- count.(d + 1) + count.(d)
  done;
  let forward = Array.make n_iter 0 in
  for it = 0 to n_iter - 1 do
    let k = key.(it) in
    forward.(it) <- count.(k);
    count.(k) <- count.(k) + 1
  done;
  Perm.unsafe_of_forward forward

(* Group by the minimum touched location instead of the first; useful
   when the touch order within an iteration is not meaningful. *)
let run_by_min (access : Access.t) =
  let n_iter = Access.n_iter access in
  let n_data = Access.n_data access in
  let key =
    Array.init n_iter (fun it ->
        Access.fold_touches access it min (n_data - 1))
  in
  let count = Array.make (n_data + 1) 0 in
  Array.iter (fun k -> count.(k + 1) <- count.(k + 1) + 1) key;
  for d = 0 to n_data - 1 do
    count.(d + 1) <- count.(d + 1) + count.(d)
  done;
  let forward = Array.make n_iter 0 in
  for it = 0 to n_iter - 1 do
    let k = key.(it) in
    forward.(it) <- count.(k);
    count.(k) <- count.(k) + 1
  done;
  Perm.unsafe_of_forward forward
