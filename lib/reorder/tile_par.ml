(* Tile-level parallelism (Sections 2.3 and 4): sparse tiling provides
   a coarser granularity of parallelism than iteration-level run-time
   parallelization — "by mapping all independent tiles to the same
   tile number, parallelism between tiles can be expressed".

   From a tiled loop chain we build the tile dependence DAG (an edge
   t1 -> t2 whenever some dependence crosses from an iteration in t1
   to an iteration in t2 with t1 <> t2), levelize it, and model the
   parallel makespan. Two same-level tiles may still update shared
   reduction locations; [shared_data_conflicts] counts those pairs so
   callers know how much combining/privatization parallel execution
   would need. *)

type t = {
  n_tiles : int;
  n_levels : int;
  level_of : int array;      (* tile -> level *)
  levels : int array array;  (* level -> tiles *)
  tile_cost : int array;     (* iterations per tile *)
}

(* Tile DAG edges from the chain's dependences: collect packed int
   keys [ta * n_tiles + tb] into a pooled scratch buffer, then
   sort-and-dedup — no Hashtbl, no tuple boxing per touch. *)
let tile_edges ~(chain : Sparse_tile.chain) ~(tiles : Sparse_tile.tile_fn array) =
  let n_tiles = tiles.(0).Sparse_tile.n_tiles in
  Irgraph.Scratch.with_buf @@ fun buf ->
  Array.iteri
    (fun l (conn : Access.t) ->
      let t_src = tiles.(l) and t_dst = tiles.(l + 1) in
      for b = 0 to Access.n_iter conn - 1 do
        let tb = t_dst.Sparse_tile.tile_of.(b) in
        Access.iter_touches conn b (fun a ->
            let ta = t_src.Sparse_tile.tile_of.(a) in
            if ta <> tb then Irgraph.Scratch.push buf ((ta * n_tiles) + tb))
      done)
    chain.Sparse_tile.conn;
  Irgraph.Scratch.sort_dedup buf;
  Array.init (Irgraph.Scratch.length buf) (fun i ->
      let key = Irgraph.Scratch.get buf i in
      (key / n_tiles, key mod n_tiles))

(* Levelize an explicit (deduplicated) edge array over [n_tiles]
   tiles. Legality guarantees ta <= tb on every dependence, so the
   DAG's edges all point from lower to higher tile ids and a single
   ascending pass levelizes it. *)
let of_edges ~n_tiles ~tile_cost edges =
  if Array.length tile_cost <> n_tiles then
    invalid_arg "Tile_par.of_edges: tile_cost size";
  let preds = Array.make n_tiles [] in
  Array.iter
    (fun (ta, tb) ->
      if ta > tb then invalid_arg "Tile_par.of_edges: illegal tiling";
      preds.(tb) <- ta :: preds.(tb))
    edges;
  let level_of = Array.make n_tiles 0 in
  let n_levels = ref 1 in
  for t = 0 to n_tiles - 1 do
    let lvl =
      List.fold_left (fun acc p -> max acc (level_of.(p) + 1)) 0 preds.(t)
    in
    level_of.(t) <- lvl;
    if lvl + 1 > !n_levels then n_levels := lvl + 1
  done;
  let counts = Array.make !n_levels 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) level_of;
  let levels = Array.map (fun c -> Array.make c 0) counts in
  let cursor = Array.make !n_levels 0 in
  Array.iteri
    (fun t l ->
      levels.(l).(cursor.(l)) <- t;
      cursor.(l) <- cursor.(l) + 1)
    level_of;
  { n_tiles; n_levels = !n_levels; level_of; levels; tile_cost }

let analyze ~(chain : Sparse_tile.chain) ~(tiles : Sparse_tile.tile_fn array) =
  let n_tiles = tiles.(0).Sparse_tile.n_tiles in
  let edges = tile_edges ~chain ~tiles in
  let tile_cost = Array.make n_tiles 0 in
  Array.iter
    (fun (tf : Sparse_tile.tile_fn) ->
      Array.iter
        (fun t -> tile_cost.(t) <- tile_cost.(t) + 1)
        tf.Sparse_tile.tile_of)
    tiles;
  of_edges ~n_tiles ~tile_cost edges

let average_parallelism t =
  float_of_int t.n_tiles /. float_of_int t.n_levels

(* Pairs of same-level tiles whose interaction-loop iterations touch a
   common datum (reduction conflicts a parallel runtime must combine).
   Scans each datum's touchers in iteration order and compares
   consecutive ones, so the count is a lower bound on all conflicting
   pairs — enough to gauge how much privatization parallel execution
   would need. *)
let shared_data_conflicts t ~(access : Access.t)
    ~(tile_of_iter : int array) =
  let n_data = Access.n_data access in
  let touchers = Array.make n_data (-1) in
  (* Collect the (possibly duplicated) conflicting pairs, then let the
     conflict graph collapse multiplicity: [Csr.of_edges] keeps
     duplicates by design and [num_distinct_edges] counts each
     conflicting pair once. *)
  Irgraph.Scratch.with_buf @@ fun pairs ->
  for it = 0 to Access.n_iter access - 1 do
    let tile = tile_of_iter.(it) in
    Access.iter_touches access it (fun d ->
        let prev = touchers.(d) in
        if prev >= 0 && prev <> tile && t.level_of.(prev) = t.level_of.(tile)
        then
          Irgraph.Scratch.push pairs
            ((min prev tile * t.n_tiles) + max prev tile);
        touchers.(d) <- tile)
  done;
  let edges =
    Array.init (Irgraph.Scratch.length pairs) (fun i ->
        let key = Irgraph.Scratch.get pairs i in
        (key / t.n_tiles, key mod t.n_tiles))
  in
  Irgraph.Csr.num_distinct_edges (Irgraph.Csr.of_edges ~n:t.n_tiles edges)

(* Greedy list-scheduled makespan (longest-processing-time within each
   level, barrier between levels), with tile cost = iteration count. *)
let makespan t ~processors =
  if processors <= 0 then invalid_arg "Tile_par.makespan: processors";
  Array.fold_left
    (fun acc tiles_in_level ->
      let costs =
        Array.map (fun tile -> t.tile_cost.(tile)) tiles_in_level
      in
      Array.sort (fun a b -> compare b a) costs;
      let procs = Array.make processors 0 in
      Array.iter
        (fun c ->
          let m = ref 0 in
          for p = 1 to processors - 1 do
            if procs.(p) < procs.(!m) then m := p
          done;
          procs.(!m) <- procs.(!m) + c)
        costs;
      acc + Array.fold_left max 0 procs)
    0 t.levels

(* Serial cost for speedup computations. *)
let serial_cost t = Array.fold_left ( + ) 0 t.tile_cost

let speedup t ~processors =
  float_of_int (serial_cost t) /. float_of_int (makespan t ~processors)

let pp ppf t =
  Fmt.pf ppf "tile-par(%d tiles, %d levels, avg parallelism %.1f)" t.n_tiles
    t.n_levels (average_parallelism t)
