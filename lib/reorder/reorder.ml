(** Run-time reordering transformations: the inspector library.

    Data reorderings (always legal — Section 4): {!Cpack},
    {!Gpart_reorder}, {!Rcm_reorder}, {!Tile_pack}.
    Iteration reorderings over dependence-free subspaces: {!Lexgroup},
    {!Lexsort}, {!Bucket_tile}.
    Iteration reorderings that traverse dependences: {!Sparse_tile}
    (full sparse tiling and cache blocking), realized through
    {!Schedule}.
    {!Perm} and {!Access} are the run-time representations of
    reordering functions and data mappings. *)

module Perm = Perm
module Access = Access
module Cpack = Cpack
module Gpart_reorder = Gpart_reorder
module Rcm_reorder = Rcm_reorder
module Multilevel_reorder = Multilevel_reorder
module Lexgroup = Lexgroup
module Lexsort = Lexsort
module Bucket_tile = Bucket_tile
module Sparse_tile = Sparse_tile
module Schedule = Schedule
module Shape = Shape
module Tile_pack = Tile_pack
module Wavefront = Wavefront
module Tile_par = Tile_par
module Sfc_reorder = Sfc_reorder
