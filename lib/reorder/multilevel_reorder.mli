(** Multilevel (METIS-style) partitioning as a run-time data
    reordering: better cuts than {!Gpart_reorder}, higher inspector
    cost. *)

(** [par] chunks the coarsening hot paths across pool lanes
    (bit-identical results); [graph] supplies a precomputed affinity
    graph (e.g. a pooled {!Access.to_graph} equivalent). *)
val run :
  ?par:Irgraph.Multilevel.par ->
  ?graph:Irgraph.Csr.t ->
  Access.t ->
  part_size:int ->
  Perm.t
val run_with_partition : Access.t -> part_size:int -> Perm.t * Irgraph.Partition.t

(** Number data consecutively by an existing partition, BFS-ordered
    within each part. *)
val order_by_partition :
  graph:Irgraph.Csr.t -> n_data:int -> Irgraph.Partition.t -> Perm.t
