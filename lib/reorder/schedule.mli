(** Executor schedules for sparse-tiled loop chains: sched(t, l) of
    Section 5.4 / Figure 14. *)

type t = private {
  n_tiles : int;
  n_loops : int;
  items : int array array array;
}

val n_tiles : t -> int
val n_loops : t -> int

(** Member iterations of [loop] inside [tile], ascending. *)
val items : t -> tile:int -> loop:int -> int array

(** Build from per-loop tile functions (which must agree on the number
    of tiles, as {!Sparse_tile.full} guarantees). *)
val of_tile_fns : Sparse_tile.tile_fn array -> t

(** Concatenated per-tile execution order of loop [l]. *)
val loop_order : t -> int -> int array

(** The iteration reordering induced on loop [l] by tiled execution. *)
val perm_of_loop : t -> int -> Perm.t

(** Remap the iteration ids of one loop through a permutation, keeping
    tile member lists ascending (tilePack's loop renaming). *)
val remap_loop : t -> loop:int -> Perm.t -> t

(** Renumber tiles: new tile [t] is old tile [order.(t)]; raises
    [Invalid_argument] unless [order] is a permutation of the tile
    ids. *)
val permute_tiles : t -> order:int array -> t

(** Each iteration of each loop appears exactly once. *)
val check_coverage : t -> loop_sizes:int array -> bool

val total_iterations : t -> int
val pp : t Fmt.t
