(** Executor schedules for sparse-tiled loop chains: sched(t, l) of
    Section 5.4 / Figure 14, stored as flat CSR.

    Row [tile * n_loops + loop] of [items] spans
    [row_ptr.(row) .. row_ptr.(row + 1) - 1]. A tile's rows are
    adjacent, so one tile's iterations form a single contiguous block
    of [items]. Construction ([of_tile_fns]) validates that each
    loop's rows partition its iteration space, and every operation
    below preserves that invariant — consumers that re-check
    {!check_fits} against their own loop sizes may stream [items] with
    [Array.unsafe_get] (see README "Hot paths"). *)

type t = private {
  n_tiles : int;
  n_loops : int;
  row_ptr : int array;  (** length [n_tiles * n_loops + 1] *)
  items : int array;    (** all member iterations, row-contiguous *)
  mutable fits_ok : int array option;
      (** last loop sizes proven by {!check_fits}; internal memo so
          cache-replayed schedules skip the O(rows) scan *)
  mutable coverage_ok : int array option;
      (** last loop sizes proven by {!check_coverage} (set at
          construction: [of_tile_fns] proves its own loops' coverage) *)
}

val n_tiles : t -> int
val n_loops : t -> int

val equal : t -> t -> bool
(** Same tiling and member order. Ignores the validation memos —
    polymorphic [=] on [t] is unreliable because the memo fields
    record execution history (what has been checked so far), not
    schedule identity. *)

val row_ptr : t -> int array
(** The CSR row pointers themselves, without copying. Do not mutate. *)

val flat_items : t -> int array
(** The flat iteration array itself, without copying. Do not mutate. *)

val row : t -> tile:int -> loop:int -> int * int
(** Bounds [(lo, hi)] of [loop]'s members inside [tile]:
    [flat_items.(lo) .. flat_items.(hi - 1)], ascending. *)

val items : t -> tile:int -> loop:int -> int array
(** Copy of [loop]'s members inside [tile], ascending. Allocates; hot
    paths should use {!row} / the record fields instead. *)

(** Build from per-loop tile functions (which must agree on the number
    of tiles, as {!Sparse_tile.full} guarantees). Validates every tile
    id; raises [Invalid_argument] on an out-of-range id. *)
val of_tile_fns : Sparse_tile.tile_fn array -> t

(** Concatenated per-tile execution order of loop [l]. *)
val loop_order : t -> int -> int array

(** The iteration reordering induced on loop [l] by tiled execution. *)
val perm_of_loop : t -> int -> Perm.t

(** Remap the iteration ids of one loop through a permutation, keeping
    tile member lists ascending (tilePack's loop renaming). *)
val remap_loop : t -> loop:int -> Perm.t -> t

(** Renumber tiles: new tile [t] is old tile [order.(t)]; raises
    [Invalid_argument] unless [order] is a permutation of the tile
    ids. One blit per tile thanks to block contiguity. *)
val permute_tiles : t -> order:int array -> t

(** Move iterations between rows of one loop:
    [(loop, iteration, old_tile, new_tile)] per move. The plan-repair
    splice under graph churn — one linear pass that blits untouched
    rows and rebuilds touched rows by sorted merge, so rows stay
    ascending exactly as [of_tile_fns] leaves them — the result is
    [equal] to a full rebuild from the updated tile functions. Per-loop totals and exactly-once coverage are invariant
    under a splice, so the {!check_fits}/{!check_coverage} memos carry
    over. Raises [Invalid_argument] on out-of-range tiles, duplicate
    moves, or a leaver that is not in its claimed row; an empty move
    array returns the schedule unchanged. *)
val splice : t -> moves:(int * int * int * int) array -> t

(** Each iteration of each loop appears exactly once. O(iterations)
    the first time; subsequent calls with the same sizes on the same
    schedule value return via the memo in O(loops) and bump the
    [plancache.coverage_check_skips] counter. *)
val check_coverage : t -> loop_sizes:int array -> bool

(** Cheap O(rows) executor guard. [loop_sizes] lists the chain's
    per-position iteration counts; [n_loops] must be a positive
    multiple of the chain length (time-step tiling unrolls the chain),
    and loop [l]'s rows must hold exactly [loop_sizes.(l mod chain)]
    iterations in total. Executors call this once per run, then stream
    with [Array.unsafe_get]. Successful checks are memoized per
    schedule value (and counted as [plancache.schedule_check_skips]
    when re-used), so cache-replayed schedules pay the scan once. *)
val check_fits : t -> loop_sizes:int array -> bool

val total_iterations : t -> int
val pp : t Fmt.t
