(* Sparse tiling: run-time iteration-reordering transformations whose
   inspectors traverse *data dependences* rather than data mappings
   (Section 2.3). A tile function assigns every iteration of every loop
   in a subspace to a tile; the executor then runs tiles atomically, in
   tile order, visiting each loop's member iterations inside the tile.

   Two growth strategies are provided:
   - full sparse tiling (Strout et al. 2001): tiles grow side-by-side
     from a seed partitioning of any loop, backward with min and
     forward with max over the dependence edges;
   - cache blocking (Douglas et al. 2000): the seed partitioning is on
     the first loop and later loops' partitions shrink, with all
     boundary iterations falling into one leftover tile executed last. *)

type tile_fn = {
  n_tiles : int;
  tile_of : int array; (* iteration -> tile id *)
}

let invalid fmt = Fmt.kstr invalid_arg fmt

(* Inspector-cost accounting (per growth pass; one branch each when
   tracing is off). *)
let c_growth_passes = Rtrt_obs.Metrics.counter "sparse_tile.growth_passes"
let c_deps_traversed = Rtrt_obs.Metrics.counter "sparse_tile.deps_traversed"
let c_tiles_grown = Rtrt_obs.Metrics.counter "sparse_tile.tiles_grown"

let count_growth ~(conn : Access.t) n_tiles =
  Rtrt_obs.Metrics.incr c_growth_passes;
  Rtrt_obs.Metrics.add c_deps_traversed (Access.n_touches conn);
  Rtrt_obs.Metrics.add c_tiles_grown n_tiles

let tile_fn_of_partition p =
  {
    n_tiles = Irgraph.Partition.n_parts p;
    tile_of = Array.copy (Irgraph.Partition.assignment p);
  }

let check_tile_fn t =
  Array.iter
    (fun x ->
      if x < 0 || x >= t.n_tiles then invalid "Sparse_tile: tile %d" x)
    t.tile_of

(* [conn] maps each iteration of the loop being assigned to the
   already-assigned adjacent loop's iterations it has dependence edges
   with. Backward growth (this loop runs before the assigned one):
   every successor's tile is an upper bound, so take the min; an
   iteration without dependences may go anywhere — tile 0 keeps it
   earliest. *)
let grow_backward ~(conn : Access.t) ~(next : tile_fn) =
  if Access.n_data conn <> Array.length next.tile_of then
    invalid "grow_backward: conn/next size mismatch";
  let n = Access.n_iter conn in
  let tile_of =
    Array.init n (fun a ->
        let t =
          Access.fold_touches conn a
            (fun acc b -> min acc next.tile_of.(b))
            max_int
        in
        if t = max_int then 0 else t)
  in
  count_growth ~conn next.n_tiles;
  { n_tiles = next.n_tiles; tile_of }

(* Backward growth walking only the *predecessor* dependence set: the
   paper's symmetric-dependence overhead reduction generalized. Where
   [grow_backward] gathers min over successors (and therefore needs
   the successor connectivity — a transpose, unless a symmetric twin
   is shared), this scatters min over the same edge multiset read from
   [conn] (each iteration of the assigned loop pushes its tile to its
   predecessors). min is order-independent, so the result is
   bit-identical to [grow_backward ~conn:(Access.transpose conn)]
   without ever materializing the transpose. *)
let grow_backward_scatter ~(conn : Access.t) ~(next : tile_fn) =
  if Access.n_iter conn <> Array.length next.tile_of then
    invalid "grow_backward_scatter: conn/next size mismatch";
  let n = Access.n_data conn in
  let tile_of = Array.make n max_int in
  for b = 0 to Access.n_iter conn - 1 do
    let t = next.tile_of.(b) in
    Access.iter_touches conn b (fun a ->
        if t < tile_of.(a) then tile_of.(a) <- t)
  done;
  for a = 0 to n - 1 do
    if tile_of.(a) = max_int then tile_of.(a) <- 0
  done;
  count_growth ~conn next.n_tiles;
  { n_tiles = next.n_tiles; tile_of }

(* Forward growth (this loop runs after the assigned one): every
   predecessor's tile is a lower bound, so take the max. *)
let grow_forward ~(conn : Access.t) ~(prev : tile_fn) =
  if Access.n_data conn <> Array.length prev.tile_of then
    invalid "grow_forward: conn/prev size mismatch";
  let n = Access.n_iter conn in
  let tile_of =
    Array.init n (fun b ->
        Access.fold_touches conn b (fun acc a -> max acc prev.tile_of.(a)) 0)
  in
  count_growth ~conn prev.n_tiles;
  { n_tiles = prev.n_tiles; tile_of }

(* Cache-blocking growth: keep an iteration in tile t only when all of
   its predecessors are in tile t; otherwise it falls into the shared
   [leftover] tile (executed last). *)
let grow_cache_block ~leftover ~(conn : Access.t) ~(prev : tile_fn) =
  if Access.n_data conn <> Array.length prev.tile_of then
    invalid "grow_cache_block: conn/prev size mismatch";
  let n = Access.n_iter conn in
  let tile_of =
    Array.init n (fun b ->
        let ts = Access.touches conn b in
        if Array.length ts = 0 then 0
        else
          let t0 = prev.tile_of.(ts.(0)) in
          if t0 <> leftover && Array.for_all (fun a -> prev.tile_of.(a) = t0) ts
          then t0
          else leftover)
  in
  count_growth ~conn (leftover + 1);
  { n_tiles = leftover + 1; tile_of }

(* ------------------------------------------------------------------ *)
(* Loop chains                                                         *)

(* A chain of loops executed in sequence (inside an outer loop), with
   dependence connectivity between adjacent loops. [conn.(l)] maps each
   iteration of loop [l+1] to the iterations of loop [l] it depends on
   (predecessors). *)
type chain = {
  loop_sizes : int array;        (* iterations per loop *)
  conn : Access.t array;         (* length = n_loops - 1 *)
}

let n_loops chain = Array.length chain.loop_sizes

let make_chain ~loop_sizes ~conn =
  if Array.length conn <> Array.length loop_sizes - 1 then
    invalid "Sparse_tile.make_chain: need one conn per adjacent pair";
  Array.iteri
    (fun l (a : Access.t) ->
      if Access.n_iter a <> loop_sizes.(l + 1) then
        invalid "make_chain: conn %d n_iter" l;
      if Access.n_data a <> loop_sizes.(l) then
        invalid "make_chain: conn %d n_data" l)
    conn;
  { loop_sizes; conn }

(* Full sparse tiling over a chain from a seed partitioning of loop
   [seed]. Returns one tile function per loop (all with the same
   n_tiles). Backward growth needs successor connectivity — the
   transpose of [conn] — unless [shared_succ] already provides it
   (the paper's symmetric-dependence overhead reduction, Section 6:
   when two dependence sets satisfy the same constraints the inspector
   traverses only one). *)
let full ?(shared_succ = []) ?grow_backward:gb ?grow_forward:gf ~chain ~seed
    ~(seed_tiles : tile_fn) () =
  let l_count = n_loops chain in
  if seed < 0 || seed >= l_count then invalid "Sparse_tile.full: seed";
  if Array.length seed_tiles.tile_of <> chain.loop_sizes.(seed) then
    invalid "Sparse_tile.full: seed partition size";
  let tiles = Array.make l_count seed_tiles in
  for l = seed - 1 downto 0 do
    tiles.(l) <-
      (match gb with
      | Some grow ->
        (* Substituted growers (scatter-min, possibly pooled) walk the
           predecessor set [conn.(l)] directly, so neither the shared
           symmetric twin nor a transpose is needed. *)
        grow ~conn:chain.conn.(l) ~next:tiles.(l + 1)
      | None ->
        let succ_conn =
          match List.assoc_opt l shared_succ with
          | Some shared -> shared
          | None -> Access.transpose chain.conn.(l)
        in
        grow_backward ~conn:succ_conn ~next:tiles.(l + 1))
  done;
  for l = seed + 1 to l_count - 1 do
    let grow = match gf with Some g -> g | None -> grow_forward in
    tiles.(l) <- grow ~conn:chain.conn.(l - 1) ~prev:tiles.(l - 1)
  done;
  tiles

(* Cache blocking over a chain: seed on loop 0, shrink forward, one
   shared leftover tile for the whole chain. *)
let cache_block ~chain ~(seed_tiles : tile_fn) =
  let l_count = n_loops chain in
  let leftover = seed_tiles.n_tiles in
  let tiles = Array.make l_count seed_tiles in
  for l = 1 to l_count - 1 do
    tiles.(l) <-
      grow_cache_block ~leftover ~conn:chain.conn.(l - 1) ~prev:tiles.(l - 1)
  done;
  let n_tiles = leftover + 1 in
  Array.map (fun t -> { t with n_tiles }) tiles

(* Run-time legality check: every dependence edge a -> b between
   adjacent loops must satisfy tile(a) <= tile(b). Returns the list of
   violated (loop_pair, a, b) triples (empty = legal). *)
let check_legality ~chain ~tiles =
  let violations = ref [] in
  Array.iteri
    (fun l (conn : Access.t) ->
      let t_src = tiles.(l) and t_dst = tiles.(l + 1) in
      for b = 0 to Access.n_iter conn - 1 do
        Access.iter_touches conn b (fun a ->
            if t_src.tile_of.(a) > t_dst.tile_of.(b) then
              violations := (l, a, b) :: !violations)
      done)
    chain.conn;
  List.rev !violations

let pp_tile_fn ppf t =
  Fmt.pf ppf "tile_fn(%d tiles over %d iterations)" t.n_tiles
    (Array.length t.tile_of)
