(* Consecutive packing (Ding & Kennedy): a run-time data-reordering
   inspector that traverses the data mapping in iteration order and
   packs locations consecutively in first-touch order; untouched
   locations keep their relative order at the end. This is Figure 10
   of the paper, generalized from the (left, right) index-array pair to
   any access pattern.

   Returns the data reordering sigma_cp with
   [Perm.forward sigma old = new]. *)

let c_runs = Rtrt_obs.Metrics.counter "cpack.runs"
let c_touches_scanned = Rtrt_obs.Metrics.counter "cpack.touches_scanned"

(* Locations placed by the iteration scan (the rest keep their
   relative order in the trailing catch-all loop). *)
let c_first_touch = Rtrt_obs.Metrics.counter "cpack.first_touch_placements"

(* Bump the run counters exactly as [run] does; for substituted
   (pooled) CPACK implementations. *)
let count_run (access : Access.t) ~placed =
  Rtrt_obs.Metrics.incr c_runs;
  Rtrt_obs.Metrics.add c_touches_scanned (Access.n_touches access);
  Rtrt_obs.Metrics.add c_first_touch placed

let run (access : Access.t) =
  let n_data = Access.n_data access in
  let already_ordered = Array.make n_data false in
  (* sigma_cp_inv in the paper: position -> original location. *)
  let inv = Array.make n_data 0 in
  let count = ref 0 in
  let place loc =
    if not already_ordered.(loc) then begin
      inv.(!count) <- loc;
      already_ordered.(loc) <- true;
      incr count
    end
  in
  for it = 0 to Access.n_iter access - 1 do
    Access.iter_touches access it place
  done;
  Rtrt_obs.Metrics.incr c_runs;
  Rtrt_obs.Metrics.add c_touches_scanned (Access.n_touches access);
  Rtrt_obs.Metrics.add c_first_touch !count;
  (* Remaining locations in original order, as in the paper's final
     loop over all nodes. *)
  for loc = 0 to n_data - 1 do
    place loc
  done;
  Perm.of_inverse inv

(* CPACK over a *view* of the base access: current iteration [cur]
   touches [sigma.(d)] for each datum [d] of base iteration
   [delta_inv.(cur)] — the fused-composition traversal that never
   materializes the intermediate access. [order] optionally gives an
   explicit visit order over current iterations (tilePack's schedule
   traversal); default is ascending. Bit-identical to [run] /
   [run_in_order] on the materialized access. *)
let run_view ?order (base : Access.t) ~(sigma : int array)
    ~(delta_inv : int array) =
  let n_data = Access.n_data base in
  let already_ordered = Array.make n_data false in
  let inv = Array.make n_data 0 in
  let count = ref 0 in
  let place loc =
    if not already_ordered.(loc) then begin
      inv.(!count) <- loc;
      already_ordered.(loc) <- true;
      incr count
    end
  in
  let visit cur =
    Access.iter_touches base delta_inv.(cur) (fun d -> place sigma.(d))
  in
  (match order with
  | Some order -> Array.iter visit order
  | None ->
    for cur = 0 to Access.n_iter base - 1 do
      visit cur
    done);
  Rtrt_obs.Metrics.incr c_runs;
  Rtrt_obs.Metrics.add c_touches_scanned (Access.n_touches base);
  Rtrt_obs.Metrics.add c_first_touch !count;
  for loc = 0 to n_data - 1 do
    place loc
  done;
  Perm.of_inverse inv

(* CPACK over an explicit iteration visit order (used by tilePack and
   by composed inspectors that traverse an updated data mapping). *)
let run_in_order (access : Access.t) ~order =
  let n_data = Access.n_data access in
  let already_ordered = Array.make n_data false in
  let inv = Array.make n_data 0 in
  let count = ref 0 in
  let place loc =
    if not already_ordered.(loc) then begin
      inv.(!count) <- loc;
      already_ordered.(loc) <- true;
      incr count
    end
  in
  Array.iter (fun it -> Access.iter_touches access it place) order;
  Rtrt_obs.Metrics.incr c_runs;
  Rtrt_obs.Metrics.add c_touches_scanned (Access.n_touches access);
  Rtrt_obs.Metrics.add c_first_touch !count;
  for loc = 0 to n_data - 1 do
    place loc
  done;
  Perm.of_inverse inv
