(** Lexicographical grouping (lexGroup, Ding & Kennedy 1999):
    iteration-reordering inspector grouping iterations by the first
    location they touch (stable counting sort). *)

(** [run access] returns the iteration reordering delta_lg. *)
val run : Access.t -> Perm.t

(** lexGroup over a fused-composition view of [base]: iteration [cur]
    is keyed by [sigma.(first_touch base delta_inv.(cur))].
    Bit-identical to {!run} on the materialized access. *)
val run_view : Access.t -> sigma:int array -> delta_inv:int array -> Perm.t

(** Variant keyed on the minimum touched location. *)
val run_by_min : Access.t -> Perm.t
