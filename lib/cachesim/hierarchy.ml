(* A two-level cache hierarchy: L1 backed by a unified L2, backed by
   memory. Modeled time distinguishes L1 hits, L2 hits and memory
   accesses — the asymmetry that drives the paper's machine contrast:
   the 1.7 GHz Pentium 4 pays on the order of 200 cycles for a memory
   access while the 375 MHz Power3 pays ~35, and the Power3's multi-MB
   L2 absorbs working sets that overwhelm the Pentium 4's 256KB. *)

type t = {
  l1 : Cache.t;
  l2 : Cache.t;
  l1_hit_cycles : float;
  l2_hit_cycles : float;
  mem_cycles : float;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable mem_accesses : int;
}

let create ~l1 ~l2 ~l1_hit_cycles ~l2_hit_cycles ~mem_cycles =
  {
    l1;
    l2;
    l1_hit_cycles;
    l2_hit_cycles;
    mem_cycles;
    l1_hits = 0;
    l2_hits = 0;
    mem_accesses = 0;
  }

(* One reference: L2 is only consulted (and filled) on an L1 miss. *)
let access t addr =
  if Cache.access t.l1 addr then t.l1_hits <- t.l1_hits + 1
  else if Cache.access t.l2 addr then t.l2_hits <- t.l2_hits + 1
  else t.mem_accesses <- t.mem_accesses + 1

let reset t =
  Cache.reset t.l1;
  Cache.reset t.l2;
  t.l1_hits <- 0;
  t.l2_hits <- 0;
  t.mem_accesses <- 0

let reset_counters t =
  Cache.reset_counters t.l1;
  Cache.reset_counters t.l2;
  t.l1_hits <- 0;
  t.l2_hits <- 0;
  t.mem_accesses <- 0

let accesses t = t.l1_hits + t.l2_hits + t.mem_accesses
let l1_misses t = t.l2_hits + t.mem_accesses
let mem_accesses t = t.mem_accesses

let modeled_cycles t =
  (float_of_int t.l1_hits *. t.l1_hit_cycles)
  +. (float_of_int t.l2_hits *. t.l2_hit_cycles)
  +. (float_of_int t.mem_accesses *. t.mem_cycles)

let miss_ratio t =
  let total = accesses t in
  if total = 0 then 0.0 else float_of_int (l1_misses t) /. float_of_int total

let pp ppf t =
  Fmt.pf ppf "hierarchy(L1 hits %d, L2 hits %d, memory %d)" t.l1_hits
    t.l2_hits t.mem_accesses

(* ------------------------------------------------------------------ *)
(* Batch scoring: immutable snapshot of the counters, the autotuner's
   locality cost model. [scored] brackets one measured region — reset
   counters (cache contents survive, so a warmed-up run scores
   steady-state locality), run, snapshot. *)

type summary = {
  s_accesses : int;
  s_l1_misses : int;
  s_mem_accesses : int;
  s_modeled_cycles : float;
  s_miss_ratio : float;
}

let summarize t =
  {
    s_accesses = accesses t;
    s_l1_misses = l1_misses t;
    s_mem_accesses = t.mem_accesses;
    s_modeled_cycles = modeled_cycles t;
    s_miss_ratio = miss_ratio t;
  }

let scored t f =
  reset_counters t;
  let v = f () in
  (v, summarize t)

(* Per-level counts exposed through the metrics registry, published
   after a counted run (the per-access path stays untouched). *)
let g_accesses = Rtrt_obs.Metrics.gauge "cachesim.accesses"
let g_l1_hits = Rtrt_obs.Metrics.gauge "cachesim.l1_hits"
let g_l1_misses = Rtrt_obs.Metrics.gauge "cachesim.l1_misses"
let g_l2_hits = Rtrt_obs.Metrics.gauge "cachesim.l2_hits"
let g_mem_accesses = Rtrt_obs.Metrics.gauge "cachesim.mem_accesses"
let g_modeled_cycles = Rtrt_obs.Metrics.gauge "cachesim.modeled_cycles"

let publish_metrics t =
  Rtrt_obs.Metrics.set g_accesses (float_of_int (accesses t));
  Rtrt_obs.Metrics.set g_l1_hits (float_of_int t.l1_hits);
  Rtrt_obs.Metrics.set g_l1_misses (float_of_int (l1_misses t));
  Rtrt_obs.Metrics.set g_l2_hits (float_of_int t.l2_hits);
  Rtrt_obs.Metrics.set g_mem_accesses (float_of_int t.mem_accesses);
  Rtrt_obs.Metrics.set g_modeled_cycles (modeled_cycles t)
