(* Machine models for the two platforms in the paper's evaluation
   (Section 2.4). The L1 and L2 data caches are modeled with per-level
   latencies; the decisive contrast is geometry (64KB/128B-line L1 and
   a multi-MB L2 on the Power3 vs 8KB/64B-line L1 and 256KB L2 on the
   Pentium 4) and the memory penalty in cycles (the 1.7 GHz Pentium 4
   pays roughly 200 cycles per memory access, the 375 MHz Power3
   roughly 35). Absolute cycle counts are representative; ratios are
   the meaningful output. *)

type t = {
  name : string;
  l1_size : int;
  l1_line : int;
  l1_assoc : int;
  l2_size : int;
  l2_line : int;
  l2_assoc : int;
  hit_cycles : float;      (* L1 hit *)
  l2_hit_cycles : float;   (* L1 miss, L2 hit *)
  mem_cycles : float;      (* miss to memory *)
  miss_cycles : float;     (* flat L1-miss penalty for the L1-only model *)
  ghz : float;             (* clock, for cycles <-> wall-time conversion *)
}

(* IBM Power3, 375 MHz: 64KB L1D (128B lines, 128-way), 4MB L2. *)
let power3 =
  {
    name = "power3";
    l1_size = 64 * 1024;
    l1_line = 128;
    l1_assoc = 128;
    l2_size = 4 * 1024 * 1024;
    l2_line = 128;
    l2_assoc = 4;
    hit_cycles = 1.0;
    l2_hit_cycles = 9.0;
    mem_cycles = 35.0;
    miss_cycles = 35.0;
    ghz = 0.375;
  }

(* Intel Pentium 4, 1.7 GHz: 8KB L1D (64B lines, 4-way), 256KB L2. *)
let pentium4 =
  {
    name = "pentium4";
    l1_size = 8 * 1024;
    l1_line = 64;
    l1_assoc = 4;
    l2_size = 256 * 1024;
    l2_line = 128;
    l2_assoc = 8;
    hit_cycles = 1.0;
    l2_hit_cycles = 18.0;
    mem_cycles = 200.0;
    miss_cycles = 27.0;
    ghz = 1.7;
  }

let custom ~name ~l1_size ~l1_line ~l1_assoc ?(l2_size = 1024 * 1024)
    ?(l2_line = 128) ?(l2_assoc = 8) ~hit_cycles ?(l2_hit_cycles = 10.0)
    ?(mem_cycles = 100.0) ?(ghz = 1.0) ~miss_cycles () =
  {
    name;
    l1_size;
    l1_line;
    l1_assoc;
    l2_size;
    l2_line;
    l2_assoc;
    hit_cycles;
    l2_hit_cycles;
    mem_cycles;
    miss_cycles;
    ghz;
  }

let by_name = function
  | "power3" -> Some power3
  | "pentium4" -> Some pentium4
  | _ -> None

(* L1-only instance (unit tests, quick estimates). *)
let cache m =
  Cache.create ~size_bytes:m.l1_size ~line_bytes:m.l1_line ~assoc:m.l1_assoc

(* Full two-level hierarchy — what the experiment harness measures. *)
let hierarchy m =
  Hierarchy.create ~l1:(cache m)
    ~l2:(Cache.create ~size_bytes:m.l2_size ~line_bytes:m.l2_line ~assoc:m.l2_assoc)
    ~l1_hit_cycles:m.hit_cycles ~l2_hit_cycles:m.l2_hit_cycles
    ~mem_cycles:m.mem_cycles

(* Cycles <-> wall time on this machine's clock, for combining the
   hierarchy's locality cost with nanosecond-denominated makespan
   terms (the autotuner's common currency). *)
let ns_of_cycles m cycles = cycles /. m.ghz
let cycles_of_ns m ns = ns *. m.ghz

(* Modeled time for the flat L1-only model. *)
let modeled_cycles m c =
  (float_of_int (Cache.accesses c) *. m.hit_cycles)
  +. (float_of_int (Cache.misses c) *. m.miss_cycles)

let pp ppf m =
  Fmt.pf ppf "%s(L1 %dKB/%dB/%d-way, L2 %dKB, mem %.0f cy)" m.name
    (m.l1_size / 1024) m.l1_line m.l1_assoc (m.l2_size / 1024) m.mem_cycles
