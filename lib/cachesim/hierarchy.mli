(** A two-level cache hierarchy (L1, unified L2, memory) with
    per-level cycle costs — the machine contrast that drives the
    paper's Power3 vs Pentium 4 results. *)

type t

val create :
  l1:Cache.t ->
  l2:Cache.t ->
  l1_hit_cycles:float ->
  l2_hit_cycles:float ->
  mem_cycles:float ->
  t

(** One reference; L2 consulted only on an L1 miss. *)
val access : t -> int -> unit

val reset : t -> unit
val reset_counters : t -> unit
val accesses : t -> int
val l1_misses : t -> int
val mem_accesses : t -> int
val modeled_cycles : t -> float
val miss_ratio : t -> float
val pp : t Fmt.t

(** Immutable snapshot of the hierarchy's counters — the batch scoring
    interface the autotuner consumes. *)
type summary = {
  s_accesses : int;
  s_l1_misses : int;
  s_mem_accesses : int;
  s_modeled_cycles : float;
  s_miss_ratio : float;
}

val summarize : t -> summary

(** [scored t f] brackets one measured region: resets the counters
    (cache contents survive, so a warmed-up hierarchy scores
    steady-state locality), runs [f], and returns its result together
    with the summary of the accesses it issued. *)
val scored : t -> (unit -> 'a) -> 'a * summary

(** Publish the per-level counts (cachesim.accesses, .l1_hits,
    .l1_misses, .l2_hits, .mem_accesses, .modeled_cycles) as gauges in
    the {!Rtrt_obs.Metrics} registry. Called by the harness after each
    counted run; a no-op while tracing is disabled. *)
val publish_metrics : t -> unit
