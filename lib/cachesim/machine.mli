(** Machine models for the paper's two evaluation platforms, with
    two-level cache hierarchies. Ratios of modeled cycles are
    meaningful, absolute values are not. *)

type t = {
  name : string;
  l1_size : int;
  l1_line : int;
  l1_assoc : int;
  l2_size : int;
  l2_line : int;
  l2_assoc : int;
  hit_cycles : float;    (** L1 hit *)
  l2_hit_cycles : float; (** L1 miss, L2 hit *)
  mem_cycles : float;    (** miss to memory *)
  miss_cycles : float;   (** flat L1-miss penalty for the L1-only model *)
  ghz : float;           (** clock, for cycles <-> wall-time conversion *)
}

(** IBM Power3: 64KB L1D (128B, 128-way), 4MB L2, ~35-cycle memory. *)
val power3 : t

(** Intel Pentium 4: 8KB L1D (64B, 4-way), 256KB L2, ~200-cycle
    memory. *)
val pentium4 : t

val custom :
  name:string ->
  l1_size:int ->
  l1_line:int ->
  l1_assoc:int ->
  ?l2_size:int ->
  ?l2_line:int ->
  ?l2_assoc:int ->
  hit_cycles:float ->
  ?l2_hit_cycles:float ->
  ?mem_cycles:float ->
  ?ghz:float ->
  miss_cycles:float ->
  unit ->
  t

val by_name : string -> t option

(** [ns_of_cycles m c] converts modeled cycles to nanoseconds on [m]'s
    clock ([cycles_of_ns] is the inverse) — the common currency when
    combining the hierarchy's locality cost with the makespan model's
    nanosecond terms. *)
val ns_of_cycles : t -> float -> float

val cycles_of_ns : t -> float -> float

(** A fresh L1-only cache (unit tests, quick estimates). *)
val cache : t -> Cache.t

(** The full two-level hierarchy the experiment harness measures. *)
val hierarchy : t -> Hierarchy.t

(** Modeled cycles for the flat L1-only model. *)
val modeled_cycles : t -> Cache.t -> float

val pp : t Fmt.t
