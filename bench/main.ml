(* Benchmark harness: one section per measured table/figure of the
   paper. For each figure the harness prints the same rows/series the
   paper reports (via the Harness.Figures drivers, using the cache
   model), and additionally runs Bechamel wall-clock benchmarks of the
   executors and inspectors, one Test.make per composition.

   Everything runs at a laptop scale by default (RTRT_SCALE env var
   overrides; 1 = the paper's dataset sizes). *)

open Bechamel
open Toolkit

let default_scale = 24

let scale =
  Rtrt_obs.Config.env_int ~min:1 ~name:"RTRT_SCALE" ~default:default_scale ()

let config =
  { Harness.Figures.scale; trace_steps = 2; wall_steps = 3; domains = 1;
    plan_cache = None }

(* Domain count for the parallel-speedup table: RTRT_DOMAINS, but at
   least 2 so the table always measures an actual pool. *)
let par_domains = max 2 (Rtrt_par.Pool.domains_from_env ~default:2 ())

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                   *)

let benchmark_tests tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> est
        | _ -> nan
      in
      (name, ns) :: acc)
    results []
  |> List.sort compare

let print_results header results =
  Fmt.pr "@.== %s (wall clock, Bechamel) ==@." header;
  List.iter (fun (name, ns) -> Fmt.pr "  %-36s %12.0f ns/run@." name ns) results

(* ------------------------------------------------------------------ *)
(* Executor benchmarks: one Test per composition (Figures 6/7 wall
   clock); the modeled-cycle versions of the same figures print below. *)

let executor_tests ~machine (kernel : Kernels.Kernel.t) =
  let plans = Harness.Figures.suite_for ~machine kernel in
  List.map
    (fun plan ->
      let result = Harness.Experiment.inspect plan kernel in
      let k = result.Compose.Inspector.kernel in
      let run () =
        match result.Compose.Inspector.schedule with
        | None -> k.Kernels.Kernel.run ~steps:1
        | Some sched -> k.Kernels.Kernel.run_tiled sched ~steps:1
      in
      Test.make ~name:(Compose.Plan.name plan) (Staged.stage run))
    plans

let bench_executors ~machine ~bench_name ~dataset_name =
  let dataset = Option.get (Datagen.Generators.by_name ~scale dataset_name) in
  let kernel = (Option.get (Kernels.by_name bench_name)) dataset in
  let tests =
    Test.make_grouped ~name:bench_name (executor_tests ~machine kernel)
  in
  let results = benchmark_tests tests in
  print_results
    (Fmt.str "executor %s/%s (one time step)" bench_name dataset_name)
    results

(* Inspector benchmarks: remap-each vs remap-once (Figure 16 wall
   clock). *)
let bench_inspectors ~bench_name ~dataset_name =
  let dataset = Option.get (Datagen.Generators.by_name ~scale dataset_name) in
  let kernel = (Option.get (Kernels.by_name bench_name)) dataset in
  let plan =
    Compose.Plan.with_fst ~seed_part_size:64 Compose.Plan.cpack_lexgroup_twice
  in
  let make_test strategy label =
    Test.make
      ~name:(Fmt.str "%s-%s" (Compose.Plan.name plan) label)
      (Staged.stage (fun () ->
           ignore (Compose.Inspector.run ~strategy plan kernel)))
  in
  let tests =
    Test.make_grouped ~name:bench_name
      [
        make_test Compose.Inspector.Remap_each "remap-each";
        make_test Compose.Inspector.Remap_once "remap-once";
        make_test Compose.Inspector.Fused "fused";
      ]
  in
  print_results
    (Fmt.str "inspector %s/%s (Figure 16)" bench_name dataset_name)
    (benchmark_tests tests)

(* ------------------------------------------------------------------ *)
(* Figure tables via the cache model                                   *)

(* Every table re-seeds the global RNG from its own title so each
   section is run-to-run stable (and independent of section order) —
   serial/parallel comparisons must not drift between invocations. *)
let section title =
  Random.init (Hashtbl.hash ("rtrt-bench", title));
  Fmt.pr "@.==== %s ====@." title

(* ------------------------------------------------------------------ *)
(* Parallel speedup table: serial vs pool execution of the Full-growth
   tiled executors, with the Tile_par makespan model's prediction
   alongside (writes BENCH_PAR.json for the CI perf trajectory). *)

let bench_par_json_path =
  Option.value
    (Sys.getenv_opt "RTRT_BENCH_PAR_JSON")
    ~default:"BENCH_PAR.json"

(* The speedup ratio divides two short wall-clock timings, so it needs
   a longer window than the modeled tables: short windows leave the
   ratio wobbling tens of percent run to run on throttled cgroup hosts
   (a CPU-quota stall lands inside one window and not the other),
   defeating both the ratios-only CI gate and the tier-decision
   sanity check. 32 steps per window averages quota stalls into both
   sides roughly equally; together with the harness's interleaved
   best-of-N this keeps same-code ratios within a few percent of 1. *)
let par_wall_steps =
  Rtrt_obs.Config.env_int ~min:1 ~name:"RTRT_BENCH_PAR_STEPS" ~default:32 ()

let par_speedup_table () =
  let config =
    {
      config with
      Harness.Figures.domains = par_domains;
      wall_steps = par_wall_steps;
    }
  in
  let report =
    Harness.Parbench.measure ~machine:Cachesim.Machine.pentium4 ~config ()
  in
  Fmt.pr "%a" Harness.Parbench.pp_report report;
  (* Tier-selection tally: how often the auto-fallback chose to run
     serial because the pool's synchronization cost couldn't pay. *)
  let tally tier =
    List.length
      (List.filter
         (fun r ->
           r.Harness.Parbench.pb_par.Harness.Experiment.par_tier = tier)
         report.Harness.Parbench.rows)
  in
  Fmt.pr "tier selection: %d parallel, %d serial (auto-fallback)@."
    (tally "parallel") (tally "serial");
  Harness.Parbench.write_json ~path:bench_par_json_path report;
  Fmt.pr "wrote %s@." bench_par_json_path

let par_only =
  Rtrt_obs.Config.env_bool ~name:"RTRT_BENCH_PAR_ONLY" ~default:false ()

(* ------------------------------------------------------------------ *)
(* Plan-cache amortization table: the full suite measured twice
   through one cache — the first pass pays the inspections (misses),
   the second replays them (hits) — with the uncached-vs-cached
   break-even in outer iterations next to each plan (writes
   BENCH_PLANCACHE.json for the CI perf trajectory). When
   RTRT_PLAN_CACHE_DIR is set the disk tier carries entries across
   processes, so a rerun's first pass can already hit. *)

let bench_plancache_json_path =
  Option.value
    (Sys.getenv_opt "RTRT_BENCH_PLANCACHE_JSON")
    ~default:"BENCH_PLANCACHE.json"

let plancache_table () =
  let cache =
    Rtrt_plancache.Cache.create ?dir:(Rtrt_plancache.Cache.dir_from_env ()) ()
  in
  let config = { config with Harness.Figures.plan_cache = Some cache } in
  let machine = Cachesim.Machine.pentium4 in
  let kernel =
    (Option.get (Kernels.by_name "moldyn"))
      (Option.get (Datagen.Generators.by_name ~scale "mol1"))
  in
  let cold = Harness.Figures.run_suite ~machine ~config kernel in
  let warm = Harness.Figures.run_suite ~machine ~config kernel in
  (match cache |> Rtrt_plancache.Cache.dir with
  | Some d -> Fmt.pr "moldyn/mol1, scale %d, disk tier at %s@." scale d
  | None -> Fmt.pr "moldyn/mol1, scale %d, memory tier only@." scale);
  let rows =
    match warm with
    | [] -> []
    | base :: _ ->
      List.map2
        (fun (c : Harness.Experiment.measurement)
             (w : Harness.Experiment.measurement) ->
          let hit =
            match w.Harness.Experiment.plancache with
            | Some pc -> pc.Harness.Experiment.pc_hit
            | None -> false
          in
          (c, w, hit, Harness.Experiment.amortization_cached ~base w))
        cold warm
  in
  List.iter
    (fun ( (c : Harness.Experiment.measurement),
           (w : Harness.Experiment.measurement),
           hit,
           breakeven ) ->
      Fmt.pr "  %-24s insp first %.4fs  second %.4fs (%s)%t@."
        c.Harness.Experiment.plan_name c.Harness.Experiment.inspector_seconds
        w.Harness.Experiment.inspector_seconds
        (if hit then "cache hit" else "MISS")
        (fun ppf ->
          match breakeven with
          | Some (uncached, cached) ->
            Fmt.pf ppf "  break-even %.1f -> %.1f steps" uncached cached
          | None -> ()))
    rows;
  let st = Rtrt_plancache.Cache.stats cache in
  Fmt.pr "  cache: %a@." Rtrt_plancache.Cache.pp_stats st;
  let json =
    Rtrt_obs.Json.(
      Obj
        [
          ("scale", Int scale);
          ( "rows",
            List
              (List.map
                 (fun ( (c : Harness.Experiment.measurement),
                        (w : Harness.Experiment.measurement),
                        hit,
                        breakeven ) ->
                   Obj
                     [
                       ("plan", String c.Harness.Experiment.plan_name);
                       ( "first_inspector_seconds",
                         Float c.Harness.Experiment.inspector_seconds );
                       ( "second_inspector_seconds",
                         Float w.Harness.Experiment.inspector_seconds );
                       ("second_was_hit", Bool hit);
                       ( "breakeven_uncached_steps",
                         match breakeven with
                         | Some (u, _) -> Float u
                         | None -> Null );
                       ( "breakeven_cached_steps",
                         match breakeven with
                         | Some (_, cc) -> Float cc
                         | None -> Null );
                     ])
                 rows) );
          ( "cache",
            Obj
              [
                ("hits", Int st.Rtrt_plancache.Cache.hits);
                ("misses", Int st.Rtrt_plancache.Cache.misses);
                ("stores", Int st.Rtrt_plancache.Cache.stores);
                ("evictions", Int st.Rtrt_plancache.Cache.evictions);
                ("disk_hits", Int st.Rtrt_plancache.Cache.disk_hits);
                ("disk_errors", Int st.Rtrt_plancache.Cache.disk_errors);
                ("bytes", Int st.Rtrt_plancache.Cache.bytes);
              ] );
        ])
  in
  Out_channel.with_open_text bench_plancache_json_path (fun oc ->
      output_string oc (Rtrt_obs.Json.to_string json);
      output_char oc '\n');
  Fmt.pr "wrote %s@." bench_plancache_json_path

let plancache_only =
  Rtrt_obs.Config.env_bool ~name:"RTRT_BENCH_PLANCACHE_ONLY" ~default:false ()

(* ------------------------------------------------------------------ *)
(* Hot-path table: flat-CSR schedule-walk bandwidth vs the pre-flat
   nested reference, moldyn tiled-vs-plain steady state, and the
   inspector phase breakdown (writes BENCH_HOTPATH.json for the CI
   perf trajectory). *)

let bench_hotpath_json_path =
  Option.value
    (Sys.getenv_opt "RTRT_BENCH_HOTPATH_JSON")
    ~default:"BENCH_HOTPATH.json"

let hotpath_table () =
  let report = Harness.Hotpath.measure ~scale () in
  Fmt.pr "%a" Harness.Hotpath.pp_report report;
  Harness.Hotpath.write_json ~path:bench_hotpath_json_path report;
  Fmt.pr "wrote %s@." bench_hotpath_json_path

let hotpath_only =
  Rtrt_obs.Config.env_bool ~name:"RTRT_BENCH_HOTPATH_ONLY" ~default:false ()

(* ------------------------------------------------------------------ *)
(* Inspector cold-cost table: serial Remap_once vs the fused one-pass
   composition, serial and pooled, with bit-identity checks (writes
   BENCH_INSPECTOR.json for the CI perf trajectory). *)

let bench_inspector_json_path =
  Option.value
    (Sys.getenv_opt "RTRT_BENCH_INSPECTOR_JSON")
    ~default:"BENCH_INSPECTOR.json"

let inspector_table () =
  let report = Harness.Inspctime.measure ~scale () in
  Fmt.pr "%a" Harness.Inspctime.pp_report report;
  if not (Harness.Inspctime.identical report) then
    Fmt.pr "WARNING: a fused variant diverged from the serial baseline@.";
  Harness.Inspctime.write_json ~path:bench_inspector_json_path report;
  Fmt.pr "wrote %s@." bench_inspector_json_path

let inspector_only =
  Rtrt_obs.Config.env_bool ~name:"RTRT_BENCH_INSPECTOR_ONLY" ~default:false ()

(* ------------------------------------------------------------------ *)
(* Autotune table: every (bench, dataset, machine) cell tuned over the
   candidate space, the winner's modeled score next to the best
   hand-named plan's, and both wall clocks (writes BENCH_AUTOTUNE.json
   for the CI perf trajectory). *)

let bench_autotune_json_path =
  Option.value
    (Sys.getenv_opt "RTRT_BENCH_AUTOTUNE_JSON")
    ~default:"BENCH_AUTOTUNE.json"

let autotune_table () =
  let config =
    { config with Harness.Figures.domains = par_domains; wall_steps = 8 }
  in
  let report = Harness.Autotune.measure ~config () in
  Fmt.pr "%a" Harness.Autotune.pp_report report;
  let beaten =
    List.length
      (List.filter
         (fun r -> r.Harness.Autotune.ab_winner_over_named_normalized <= 1.0)
         report.Harness.Autotune.rep_rows)
  in
  Fmt.pr "winner matches or beats the best hand-named plan on %d/%d cells@."
    beaten
    (List.length report.Harness.Autotune.rep_rows);
  Harness.Autotune.write_json ~path:bench_autotune_json_path report;
  Fmt.pr "wrote %s@." bench_autotune_json_path

let autotune_only =
  Rtrt_obs.Config.env_bool ~name:"RTRT_BENCH_AUTOTUNE_ONLY" ~default:false ()

(* ------------------------------------------------------------------ *)
(* Churn table: incremental plan repair vs cold re-inspection after
   rewiring 1/2/5/10% of interactions, with bit-identity checks and
   the steps-to-amortize break-even (writes BENCH_CHURN.json for the
   CI perf trajectory). *)

let bench_churn_json_path =
  Option.value
    (Sys.getenv_opt "RTRT_BENCH_CHURN_JSON")
    ~default:"BENCH_CHURN.json"

(* Unlike the speedup table, the churn table does not need a pool to
   be meaningful (repair is domain-count independent), so RTRT_DOMAINS
   is honoured as-is: the serial leg is the reproducible one the CI
   baseline gates on, the pooled leg checks the pooled growth paths. *)
let churn_domains = Rtrt_par.Pool.domains_from_env ~default:1 ()

let churn_table ~full () =
  let report =
    Harness.Churnbench.measure ~full ~scale ~domains:churn_domains ()
  in
  Fmt.pr "%a" Harness.Churnbench.pp_report report;
  Harness.Churnbench.write_json ~path:bench_churn_json_path report;
  Fmt.pr "wrote %s@." bench_churn_json_path

let churn_only =
  Rtrt_obs.Config.env_bool ~name:"RTRT_BENCH_CHURN_ONLY" ~default:false ()

let () =
  Rtrt_obs.Config.init ();
  Fmt.pr "rtrt bench harness; dataset scale %d (RTRT_SCALE overrides)@." scale;

  if par_only then (
    (* Fast mode for the CI bench job: only the speedup table + JSON. *)
    section "Parallel speedup (serial vs domain pool)";
    par_speedup_table ();
    exit 0);

  if plancache_only then (
    (* Fast mode for the CI plan-cache job: only the amortization
       table + JSON. *)
    section "Plan-cache amortization (cold vs warm inspection)";
    plancache_table ();
    exit 0);

  if hotpath_only then (
    (* Fast mode for the CI hotpath job: only the hot-path table +
       JSON. *)
    section "Hot paths (flat-CSR schedule walk, tiled steady state)";
    hotpath_table ();
    exit 0);

  if inspector_only then (
    (* Fast mode for the CI inspector job: only the fused cold-cost
       table + JSON. *)
    section "Inspector cold cost (serial vs fused vs fused+pool)";
    inspector_table ();
    exit 0);

  if autotune_only then (
    (* Fast mode for the CI autotune job: only the tuner table + JSON. *)
    section "Plan autotuning (cost-model search over the plan space)";
    autotune_table ();
    exit 0);

  if churn_only then (
    (* Fast mode for the CI churn job: only the repair-vs-cold table +
       JSON, without the irreg extra cell. *)
    section "Graph churn (incremental repair vs cold re-inspection)";
    churn_table ~full:false ();
    exit 0);

  section "Section 2.4: datasets";
  Fmt.pr "%a" Harness.Figures.pp_dataset_table
    (Harness.Figures.dataset_table ~config ());

  section "Figure 6: normalized executor time, Power3 model";
  Fmt.pr "%a" Harness.Figures.pp_exec_rows
    (Harness.Figures.executor_time ~machine:Cachesim.Machine.power3 ~config ());

  section "Figure 7: normalized executor time, Pentium 4 model";
  Fmt.pr "%a" Harness.Figures.pp_exec_rows
    (Harness.Figures.executor_time ~machine:Cachesim.Machine.pentium4 ~config ());

  section "Figure 8: amortization (outer iterations), Power3 model";
  Fmt.pr "%a" Harness.Figures.pp_amort_rows
    (Harness.Figures.amortization ~machine:Cachesim.Machine.power3 ~config ());

  section "Figure 9: amortization (outer iterations), Pentium 4 model";
  Fmt.pr "%a" Harness.Figures.pp_amort_rows
    (Harness.Figures.amortization ~machine:Cachesim.Machine.pentium4 ~config ());

  section "Figure 16: remap-once inspector overhead reduction";
  Fmt.pr "%a" Harness.Figures.pp_remap_rows
    (Harness.Figures.remap_overhead ~machine:Cachesim.Machine.pentium4 ~config
       ());

  section "Figure 17: cache-size-target sweep, Pentium 4 model";
  Fmt.pr "%a" Harness.Figures.pp_sweep_rows
    (Harness.Figures.cache_target_sweep ~machine:Cachesim.Machine.pentium4
       ~config ());

  section "Ablations A1-A6 (DESIGN.md section 5)";
  List.iter
    (Fmt.pr "%a" Harness.Ablations.pp_rows)
    (Harness.Ablations.all ~machine:Cachesim.Machine.pentium4
       ~config:{ config with Harness.Figures.scale = max config.Harness.Figures.scale 32 }
       ());

  section "Gauss-Seidel sparse tiling (E-GS)";
  (let dataset = Datagen.Generators.foil ~scale:(max scale 32) () in
   let graph = Datagen.Dataset.to_graph dataset in
   let n = Irgraph.Csr.num_nodes graph in
   let f = Array.init n (fun i -> 1.0 +. float_of_int (i mod 13)) in
   let slab = 3 and slabs = 8 in
   let partition = Irgraph.Partition.gpart graph ~part_size:32 in
   let graph', f', _sigma, seed =
     Kernels.Gauss_seidel.renumber_by_partition graph ~f ~partition
   in
   let tiling =
     Kernels.Gauss_seidel.grow graph' ~seed ~seed_sweep:(slab / 2) ~sweeps:slab
   in
   let machine = Cachesim.Machine.pentium4 in
   let misses run =
     let t = Kernels.Gauss_seidel.create ~graph:graph' ~f:f' in
     let layout = Kernels.Gauss_seidel.layout t in
     let hierarchy = Cachesim.Machine.hierarchy machine in
     run t ~layout ~access:(Cachesim.Hierarchy.access hierarchy);
     Cachesim.Hierarchy.l1_misses hierarchy
   in
   let plain =
     misses (fun t ~layout ~access ->
         Kernels.Gauss_seidel.run_traced t ~sweeps:(slab * slabs) ~layout ~access)
   in
   let tiled =
     misses (fun t ~layout ~access ->
         Kernels.Gauss_seidel.run_tiled_traced ~slabs t tiling ~layout ~access)
   in
   Fmt.pr "plain %d misses, sparse tiled %d misses (%.0f%% fewer), %d tiles, \
           constraints ok: %b@."
     plain tiled
     (100.0 *. (1.0 -. (float_of_int tiled /. float_of_int plain)))
     tiling.Kernels.Gauss_seidel.n_tiles
     (Kernels.Gauss_seidel.check_constraints graph' tiling = []));

  section "Parallel speedup (serial vs domain pool)";
  par_speedup_table ();

  section "Plan-cache amortization (cold vs warm inspection)";
  plancache_table ();

  section "Hot paths (flat-CSR schedule walk, tiled steady state)";
  hotpath_table ();

  section "Inspector cold cost (serial vs fused vs fused+pool)";
  inspector_table ();

  section "Plan autotuning (cost-model search over the plan space)";
  autotune_table ();

  section "Graph churn (incremental repair vs cold re-inspection)";
  churn_table ~full:true ();

  section "Wall-clock executor benchmarks (Figures 6/7 cross-check)";
  List.iter
    (fun (b, d) ->
      bench_executors ~machine:Cachesim.Machine.pentium4 ~bench_name:b
        ~dataset_name:d)
    [ ("irreg", "foil"); ("nbf", "foil"); ("moldyn", "mol1") ];

  section "Wall-clock inspector benchmarks (Figure 16 cross-check)";
  List.iter
    (fun (b, d) -> bench_inspectors ~bench_name:b ~dataset_name:d)
    [ ("irreg", "foil"); ("moldyn", "mol1") ]
